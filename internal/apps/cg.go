package apps

import (
	"mheta/internal/exec"
	"mheta/internal/program"
)

// Conjugate Gradient, after the NAS benchmark: repeated sparse
// matrix-vector products over a large symmetric positive-definite matrix
// distributed by rows, punctuated by dot-product reductions and a
// gather of the updated direction vector.
//
// The matrix is the application MHETA struggles with (§5.4 limitation 3):
// the on-disk representation pads every row to a fixed slot count, so
// MHETA sees uniform elements, but the *work* per row follows the true
// nonzero count, which varies along the row space. The instrumented
// iteration measures a per-element compute rate blended over the base
// distribution's rows; scaling that rate by row counts mispredicts any
// distribution whose blocks land on differently-dense regions — "there is
// not a simple correlation between number of rows and number of elements
// per row, resulting in slight load imbalances in CG that our model did
// not predict".

// CGConfig sizes the benchmark.
type CGConfig struct {
	N          int // matrix dimension
	MaxBand    int // maximum half-bandwidth (peak of the density wave)
	MinBand    int // minimum half-bandwidth
	Iterations int
	Seed       uint64
}

// DefaultCGConfig matches the experiment scale: N=8192 with half-bandwidth
// varying 8..48 along the rows (padded rows of 112 slots ≈ 1.8 KiB; a
// ~14 MiB matrix), 10 iterations as in §5.1.
func DefaultCGConfig() CGConfig {
	return CGConfig{N: 8192, MaxBand: 48, MinBand: 8, Iterations: 10, Seed: 0xC6}
}

// cgSlots is the padded slot count per row: the widest possible band.
func (cfg CGConfig) cgSlots() int { return 2*cfg.MaxBand + 1 }

// cgElemBytes is the padded on-disk row size: 16 bytes per slot (column
// index + value).
func (cfg CGConfig) cgElemBytes() int64 { return int64(cfg.cgSlots()) * 16 }

// band returns row i's half-bandwidth w(i): a smooth wave along the row
// space, so nonzero density varies by region. A[i][j] ≠ 0 iff
// |i−j| ≤ min(w(i), w(j)) — a symmetric condition, so A is symmetric.
func (cfg CGConfig) band(i int) int {
	x := float64(i) / float64(cfg.N)
	// Three full density waves across the matrix.
	s := 0.5 + 0.5*sinApprox(2*pi*3*x)
	w := cfg.MinBand + int(s*float64(cfg.MaxBand-cfg.MinBand))
	if w < 1 {
		w = 1
	}
	return w
}

const pi = 3.141592653589793

// sinApprox is a deterministic sine sufficient for density shaping
// (avoids importing math just for the pattern; accuracy is irrelevant,
// determinism is not). Bhaskara's approximation, extended to all phases.
func sinApprox(x float64) float64 {
	// Reduce to [0, 2π).
	x -= float64(int(x/(2*pi))) * 2 * pi
	if x < 0 {
		x += 2 * pi
	}
	sign := 1.0
	if x > pi {
		x -= pi
		sign = -1
	}
	return sign * 16 * x * (pi - x) / (5*pi*pi - 4*x*(pi-x))
}

// cgRow materialises row i: slot pairs (col, val) for the true nonzeros,
// padded with (-1, 0). Diagonal dominance makes A positive definite.
func cgRow(cfg CGConfig, i int) []byte {
	slots := cfg.cgSlots()
	row := make([]byte, 16*slots)
	wi := cfg.band(i)
	k := 0
	var offSum float64
	put := func(col int, val float64) {
		putF64(row, 2*k, float64(col))
		putF64(row, 2*k+1, val)
		k++
	}
	for j := i - wi; j <= i+wi; j++ {
		if j < 0 || j >= cfg.N || j == i {
			continue
		}
		d := i - j
		if d < 0 {
			d = -d
		}
		if d > cfg.band(j) {
			continue // symmetric band condition
		}
		v := -1.0 / float64(1+d)
		put(j, v)
		offSum += 1.0 / float64(1+d)
	}
	put(i, 2*offSum+1) // diagonal: dominant → SPD
	for ; k < slots; k++ {
		putF64(row, 2*k, -1)
		putF64(row, 2*k+1, 0)
	}
	return row
}

// cgNNZ counts row i's true nonzeros (the work units of the spmv kernel).
func cgNNZ(cfg CGConfig, i int) int {
	wi := cfg.band(i)
	n := 1 // diagonal
	for j := i - wi; j <= i+wi; j++ {
		if j < 0 || j >= cfg.N || j == i {
			continue
		}
		d := i - j
		if d < 0 {
			d = -d
		}
		if d <= cfg.band(j) {
			n++
		}
	}
	return n
}

// cgB returns the right-hand side b.
func cgB(cfg CGConfig, i int) float64 { return 1 + hash64(cfg.Seed, i) }

// CGProgram builds the structural IR: three parallel sections per
// iteration — the out-of-core spmv ending in a dot-product reduction, the
// x/r update ending in a norm reduction, and the direction update ending
// in the p-vector gather (an N-element sum reduction).
func CGProgram(cfg CGConfig) *program.Program {
	return &program.Program{
		Name: "cg",
		Variables: []program.Variable{
			{Name: "A", ElemBytes: cfg.cgElemBytes(), Elems: cfg.N, Distributed: true, ReadOnly: true, Sparse: true},
		},
		Sections: []program.Section{
			{
				Name:  "spmv",
				Tiles: 1,
				Stages: []program.Stage{{
					Name:        "q=Ap",
					WorkPerElem: float64(cfg.MaxBand + cfg.MinBand),
					Uses:        []program.VarRef{{Name: "A"}},
				}},
				Comm:        program.CommReduction,
				ReduceBytes: 8,
			},
			{
				Name:  "xr-update",
				Tiles: 1,
				Stages: []program.Stage{{
					Name:        "x+=ap,r-=aq",
					WorkPerElem: 4,
				}},
				Comm:        program.CommReduction,
				ReduceBytes: 8,
			},
			{
				Name:  "p-update",
				Tiles: 1,
				Stages: []program.Stage{{
					Name:        "p=r+bp",
					WorkPerElem: 2,
				}},
				Comm:        program.CommReduction,
				ReduceBytes: int64(cfg.N) * 8,
			},
		},
		Iterations:   cfg.Iterations,
		WorkUnitCost: 2e-6,
	}
}

// NewCG builds the runnable application.
func NewCG(cfg CGConfig) *exec.App {
	prog := CGProgram(cfg)
	return &exec.App{
		Prog: prog,
		NewState: func(nc *exec.NodeCtx) exec.State {
			return &cgState{cfg: cfg}
		},
	}
}

type cgState struct {
	cfg CGConfig
	// Replicated direction vector (gathered each iteration).
	p []float64
	// Local blocks.
	x, r, q []float64
	// Scalars of the current iteration.
	rho, alpha, beta float64
	pq               float64 // local then global p·q
	// Rho is exposed for verification (global r·r after the iteration).
	Rho float64
}

func (s *cgState) Init(nc *exec.NodeCtx) {
	cfg := s.cfg
	if nc.Count > 0 {
		block := make([]byte, int64(nc.Count)*cfg.cgElemBytes())
		for i := 0; i < nc.Count; i++ {
			copy(block[int64(i)*cfg.cgElemBytes():], cgRow(cfg, nc.Start+i))
		}
		nc.R.Disk().Store("A", block)
	}
	// x=0, r=b, p=r, rho = r·r (global, computable locally since b is
	// deterministic).
	s.p = make([]float64, cfg.N)
	for i := range s.p {
		s.p[i] = cgB(cfg, i)
	}
	s.x = make([]float64, nc.Count)
	s.r = make([]float64, nc.Count)
	s.q = make([]float64, nc.Count)
	s.rho = 0
	for i := 0; i < cfg.N; i++ {
		s.rho += cgB(cfg, i) * cgB(cfg, i)
	}
	for i := 0; i < nc.Count; i++ {
		s.r[i] = cgB(cfg, nc.Start+i)
	}
}

func (s *cgState) Process(nc *exec.NodeCtx, sec, stg, tile, gRow, nRows int, buf []byte) float64 {
	cfg := s.cfg
	switch sec {
	case 0: // q_local = A·p over a chunk of rows; accumulate p·q
		slots := cfg.cgSlots()
		work := 0.0
		if gRow == nc.Start {
			s.pq = 0
		}
		for i := 0; i < nRows; i++ {
			gi := gRow + i
			li := gi - nc.Start
			sum := 0.0
			nnz := 0
			base := i * slots * 2
			for k := 0; k < slots; k++ {
				col := f64(buf, base+2*k)
				if col < 0 {
					continue
				}
				sum += f64(buf, base+2*k+1) * s.p[int(col)]
				nnz++
			}
			s.q[li] = sum
			s.pq += s.p[gi] * sum
			work += float64(nnz)
		}
		return chunkWork(work, buf)
	case 1: // x += αp, r −= αq over local rows; accumulate r·r
		// alpha was fixed by section 0's reduction.
		local := 0.0
		for li := 0; li < nc.Count; li++ {
			gi := nc.Start + li
			s.x[li] += s.alpha * s.p[gi]
			s.r[li] -= s.alpha * s.q[li]
			local += s.r[li] * s.r[li]
		}
		s.pq = local // reuse as the value carried into the reduction
		return 4 * float64(nc.Count)
	case 2: // p = r + βp over local rows (gathered by the reduction)
		for li := 0; li < nc.Count; li++ {
			gi := nc.Start + li
			s.p[gi] = s.r[li] + s.beta*s.p[gi]
		}
		return 2 * float64(nc.Count)
	default:
		panic("cg: unexpected section")
	}
}

func (s *cgState) BoundaryMsg(nc *exec.NodeCtx, sec, tile, dir int) []byte { return nil }

func (s *cgState) OnBoundary(nc *exec.NodeCtx, sec, tile, dir int, data []byte) {}

func (s *cgState) ReduceVal(nc *exec.NodeCtx, sec int) []float64 {
	switch sec {
	case 0, 1:
		return []float64{s.pq}
	case 2:
		// Gather: contribute my block of the new p, zeros elsewhere; the
		// sum reduction assembles the full vector on every rank.
		vals := make([]float64, s.cfg.N)
		for li := 0; li < nc.Count; li++ {
			vals[nc.Start+li] = s.p[nc.Start+li]
		}
		return vals
	default:
		panic("cg: unexpected reduction")
	}
}

func (s *cgState) OnReduce(nc *exec.NodeCtx, sec int, vals []float64) {
	switch sec {
	case 0:
		pq := vals[0]
		if pq != 0 {
			s.alpha = s.rho / pq
		} else {
			s.alpha = 0
		}
	case 1:
		rhoNew := vals[0]
		if s.rho != 0 {
			s.beta = rhoNew / s.rho
		} else {
			s.beta = 0
		}
		s.rho = rhoNew
		s.Rho = rhoNew
	case 2:
		copy(s.p, vals)
	}
}

// CGReference runs the same CG sequentially (same block-summation order
// for the dot products, so results match the parallel run up to the
// reduction tree's floating-point reassociation). It returns the residual
// norms rho after each iteration.
func CGReference(cfg CGConfig, iters int) []float64 {
	n := cfg.N
	// Materialise the matrix rows once.
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = cgRow(cfg, i)
	}
	slots := cfg.cgSlots()
	p := make([]float64, n)
	r := make([]float64, n)
	x := make([]float64, n)
	q := make([]float64, n)
	rho := 0.0
	for i := 0; i < n; i++ {
		p[i] = cgB(cfg, i)
		r[i] = p[i]
		rho += r[i] * r[i]
	}
	var rhos []float64
	for it := 0; it < iters; it++ {
		pq := 0.0
		for i := 0; i < n; i++ {
			sum := 0.0
			for k := 0; k < slots; k++ {
				col := f64(rows[i], 2*k)
				if col < 0 {
					continue
				}
				sum += f64(rows[i], 2*k+1) * p[int(col)]
			}
			q[i] = sum
			pq += p[i] * sum
		}
		alpha := 0.0
		if pq != 0 {
			alpha = rho / pq
		}
		rhoNew := 0.0
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
			rhoNew += r[i] * r[i]
		}
		beta := 0.0
		if rho != 0 {
			beta = rhoNew / rho
		}
		rho = rhoNew
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
		rhos = append(rhos, rho)
	}
	return rhos
}
