package apps

import (
	"mheta/internal/exec"
	"mheta/internal/program"
)

// RNA: the pipelining benchmark "based on RNA pseudoknots" — a wavefront
// dynamic program over an N×M table distributed by rows. The column space
// is cut into tiles; node p can only process tile k after receiving the
// last row of its upstream neighbour's strip for tile k, so execution
// pipelines down the node chain (§4.2.2's pipelined pattern, modelled by
// Equation 4). The table is read and written each pass, out of core when
// the node's block exceeds memory.
//
// The recurrence T[i][j] = 0.5·max(T[i−1][j], T[i][j−1]) + s(i,j) has the
// true wavefront dependency structure and — unlike block relaxation — a
// distribution-independent result, so tests verify the table against a
// sequential sweep bit-for-bit.

// RNAConfig sizes the benchmark.
type RNAConfig struct {
	Rows, Cols int
	Tiles      int
	Iterations int
	// Prefetch unrolls each tile's ICLA loop (Figure 6) — prefetching
	// inside a pipelined section, combining Equations 2 and 4.
	Prefetch bool
	Seed     uint64
}

// DefaultRNAConfig matches the experiment scale: a 4096×1024 table
// (32 MiB) in 8 column tiles, 10 iterations as in §5.1.
func DefaultRNAConfig() RNAConfig {
	return RNAConfig{Rows: 4096, Cols: 1024, Tiles: 8, Iterations: 10, Seed: 0x52A}
}

func (cfg RNAConfig) strip() int { return cfg.Cols / cfg.Tiles }

// rnaScore is the static per-cell score s(i,j).
func rnaScore(cfg RNAConfig, i, j int) float64 {
	return hash64(cfg.Seed, i*cfg.Cols+j)
}

// RNAProgram builds the structural IR: one pipelined section (the
// wavefront) followed by a score reduction.
func RNAProgram(cfg RNAConfig) *program.Program {
	if cfg.Cols%cfg.Tiles != 0 {
		panic("rna: Cols must be divisible by Tiles")
	}
	return &program.Program{
		Name: "rna",
		Variables: []program.Variable{
			{Name: "T", ElemBytes: int64(cfg.Cols) * 8, Elems: cfg.Rows, Distributed: true},
		},
		Sections: []program.Section{
			{
				Name:  "wavefront",
				Tiles: cfg.Tiles,
				Stages: []program.Stage{{
					Name:        "dp",
					WorkPerElem: float64(cfg.Cols),
					Uses:        []program.VarRef{{Name: "T", Write: true}},
					Prefetch:    cfg.Prefetch,
				}},
				Comm:                program.CommPipeline,
				MsgBytesPerNeighbor: int64(cfg.strip()) * 8,
			},
			{
				Name:  "score",
				Tiles: 1,
				Stages: []program.Stage{{
					Name:        "local-score",
					WorkPerElem: 1,
				}},
				Comm:        program.CommReduction,
				ReduceBytes: 8,
			},
		},
		Iterations:   cfg.Iterations,
		WorkUnitCost: 4e-7,
	}
}

// NewRNA builds the runnable application.
func NewRNA(cfg RNAConfig) *exec.App {
	prog := RNAProgram(cfg)
	return &exec.App{
		Prog: prog,
		NewState: func(nc *exec.NodeCtx) exec.State {
			return &rnaState{cfg: cfg}
		},
	}
}

type rnaState struct {
	cfg RNAConfig
	// haloStrip is the upstream neighbour's last-row strip for the
	// current tile (zeros for the pipeline head).
	haloStrip []float64
	// carryStrip is my last updated row's strip for the current tile,
	// captured while processing and forwarded downstream.
	carryStrip []float64
	// lastCol[i] is local row i's value at the rightmost column of the
	// previously processed tile (the T[i][j−1] dependency across strips).
	lastCol []float64
	// score accumulates the local score; GlobalScore holds the reduction
	// result for verification.
	score       float64
	GlobalScore float64
}

func (s *rnaState) Init(nc *exec.NodeCtx) {
	cfg := s.cfg
	if nc.Count > 0 {
		// The table starts at zero, laid out tile-major on disk.
		nc.R.Disk().Store("T", make([]byte, int64(nc.Count)*int64(cfg.Cols)*8))
	}
	s.haloStrip = make([]float64, cfg.strip())
	s.carryStrip = make([]float64, cfg.strip())
	s.lastCol = make([]float64, nc.Count)
}

func (s *rnaState) Process(nc *exec.NodeCtx, sec, stg, tile, gRow, nRows int, buf []byte) float64 {
	cfg := s.cfg
	switch sec {
	case 0:
		strip := cfg.strip()
		colBase := tile * strip
		// up holds the previous row's strip values (current iteration).
		up := s.haloStrip
		if gRow > nc.Start {
			up = s.carryStrip
		} else if nc.ActiveIndex() == 0 {
			up = make([]float64, strip) // table boundary row: zeros
		}
		if gRow == nc.Start && tile == 0 {
			s.score = 0
		}
		for i := 0; i < nRows; i++ {
			li := gRow - nc.Start + i
			left := 0.0
			if tile > 0 {
				left = s.lastCol[li]
			}
			base := i * strip
			for j := 0; j < strip; j++ {
				upv := up[j]
				m := upv
				if left > m {
					m = left
				}
				v := 0.5*m + rnaScore(cfg, gRow+i, colBase+j)
				putF64(buf, base+j, v)
				left = v
			}
			s.lastCol[li] = left
			up = stripOf(buf, i, strip)
			if tile == cfg.Tiles-1 {
				s.score += left // row's final-column value
			}
		}
		copy(s.carryStrip, up)
		return chunkWork(float64(nRows)*float64(strip), buf)
	case 1:
		return float64(nRows)
	default:
		panic("rna: unexpected section")
	}
}

func stripOf(buf []byte, i, strip int) []float64 {
	out := make([]float64, strip)
	for j := range out {
		out[j] = f64(buf, i*strip+j)
	}
	return out
}

func (s *rnaState) BoundaryMsg(nc *exec.NodeCtx, sec, tile, dir int) []byte {
	return f64sToBytes(s.carryStrip)
}

func (s *rnaState) OnBoundary(nc *exec.NodeCtx, sec, tile, dir int, data []byte) {
	s.haloStrip = bytesToF64s(data)
}

func (s *rnaState) ReduceVal(nc *exec.NodeCtx, sec int) []float64 {
	return []float64{s.score}
}

func (s *rnaState) OnReduce(nc *exec.NodeCtx, sec int, vals []float64) {
	s.GlobalScore = vals[0]
}

// RNAReference computes the table sequentially: a plain row-major sweep
// per iteration, which the pipelined parallel version reproduces exactly
// (the wavefront decomposition does not change the arithmetic). It
// returns the final table and total score (Σ of last-column values).
func RNAReference(cfg RNAConfig, iters int) ([][]float64, float64) {
	t := make([][]float64, cfg.Rows)
	for i := range t {
		t[i] = make([]float64, cfg.Cols)
	}
	score := 0.0
	for it := 0; it < iters; it++ {
		score = 0
		for i := 0; i < cfg.Rows; i++ {
			for j := 0; j < cfg.Cols; j++ {
				up := 0.0
				if i > 0 {
					up = t[i-1][j]
				}
				left := 0.0
				if j > 0 {
					left = t[i][j-1]
				}
				m := up
				if left > m {
					m = left
				}
				t[i][j] = 0.5*m + rnaScore(cfg, i, j)
			}
			score += t[i][cfg.Cols-1]
		}
	}
	return t, score
}
