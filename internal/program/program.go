// Package program defines the structural intermediate representation MHETA
// consumes: parallel sections, tiles, stages, and the variables they touch
// (§3.1, Figure 1).
//
// The paper extracts this structure by manual source analysis and stores
// it "in a file read by MHETA"; its future work is to derive it by static
// analysis. Here each application constructs its Program directly, and the
// instrument package serialises it alongside the measured costs.
package program

import "fmt"

// CommPattern is the communication that ends a parallel section (§3.1: a
// parallel section is code in between either a nearest-neighbour or
// reduction communication pattern; pipelined sections communicate per
// tile).
type CommPattern int

const (
	// CommNone: section performs no communication (e.g. a purely local
	// stage run before a reduction section).
	CommNone CommPattern = iota
	// CommNearestNeighbor: each node exchanges boundaries with its
	// neighbours at the end of the section (Figure 1's EXCHANGE
	// BOUNDARIES).
	CommNearestNeighbor
	// CommPipeline: the section has many tiles; node p sends to p+1 after
	// each tile and p waits on p−1 before each tile (§4.2.2, Equation 4).
	CommPipeline
	// CommReduction: a global reduction over a scalar per node (Figure
	// 1's GLOBAL REDUCTION).
	CommReduction
)

// String implements fmt.Stringer.
func (c CommPattern) String() string {
	switch c {
	case CommNone:
		return "none"
	case CommNearestNeighbor:
		return "nearest-neighbor"
	case CommPipeline:
		return "pipeline"
	case CommReduction:
		return "reduction"
	default:
		return fmt.Sprintf("CommPattern(%d)", int(c))
	}
}

// Variable is a distributed (or replicated) array in the application.
type Variable struct {
	Name string
	// ElemBytes is the size of one element (a full row for 2-D arrays
	// distributed by rows, matching the paper's 1-D GEN_BLOCK model).
	ElemBytes int64
	// Elems is the global element (row) count.
	Elems int
	// Distributed is false for replicated read-only data (Figure 1's
	// array A, whose "necessary rows can be replicated").
	Distributed bool
	// ReadOnly variables incur no write-back when processed out of core
	// ("For the Conjugate Gradient and Lanzcos applications, the array is
	// read-only, and no writes are performed").
	ReadOnly bool
	// Sparse marks variables with irregular per-row cost (CG). MHETA
	// cannot see this (§5.4 limitation 3); the emulator can.
	Sparse bool
}

// TotalBytes returns the variable's global footprint.
func (v Variable) TotalBytes() int64 { return v.ElemBytes * int64(v.Elems) }

// VarRef names a variable used by a stage together with the access mode.
type VarRef struct {
	Name  string
	Write bool
}

// Stage is the unit within which only computation and I/O occur (§3.1).
type Stage struct {
	Name string
	// WorkPerElem is the computation per local element in abstract work
	// units (one unit costs 1/CPUPower seconds × the app's WorkUnitCost).
	WorkPerElem float64
	// Uses lists the distributed variables the stage streams through
	// memory; out-of-core ones are read (and written back unless
	// read-only) in ICLA pieces.
	Uses []VarRef
	// Prefetch marks the stage's ICLA loop as unrolled for prefetching
	// (Figure 6).
	Prefetch bool
}

// Section is a parallel section: a set of tiles each running the same
// stages, ended by a communication pattern.
type Section struct {
	Name string
	// Tiles is the number of tiles; >1 only for pipelined sections.
	Tiles int
	// Stages run in order within each tile.
	Stages []Stage
	// Comm is the communication pattern ending the section.
	Comm CommPattern
	// MsgBytesPerNeighbor is the boundary-message payload for
	// nearest-neighbour and pipelined communication; reductions use
	// ReduceBytes.
	MsgBytesPerNeighbor int64
	// ReduceBytes is the payload of each reduction message.
	ReduceBytes int64
}

// Program is a whole iterative application.
type Program struct {
	Name       string
	Variables  []Variable
	Sections   []Section
	Iterations int
	// WorkUnitCost is the seconds one abstract work unit takes on a node
	// with CPUPower 1. It calibrates the app's compute/IO balance.
	WorkUnitCost float64
	// IterWeights optionally makes iterations nonuniform (§3.1: "MHETA
	// can support the case where iterations take a nonuniform amount of
	// time"): iteration i's computation is scaled by IterWeights[i]
	// relative to the instrumented iteration (index 0). Nil means
	// uniform. I/O volume is unaffected — the dataset still streams in
	// full every iteration.
	IterWeights []float64
}

// IterWeight returns iteration i's computation weight (1 when uniform).
func (p *Program) IterWeight(i int) float64 {
	if p.IterWeights == nil {
		return 1
	}
	return p.IterWeights[i]
}

// Var returns the named variable, or an error naming the program for
// context.
func (p *Program) Var(name string) (Variable, error) {
	for _, v := range p.Variables {
		if v.Name == name {
			return v, nil
		}
	}
	return Variable{}, fmt.Errorf("program %q: unknown variable %q", p.Name, name)
}

// MustVar is Var for statically-known names; it panics on a miss.
func (p *Program) MustVar(name string) Variable {
	v, err := p.Var(name)
	if err != nil {
		panic(err)
	}
	return v
}

// DistributedVars returns the distributed variables in declaration order.
func (p *Program) DistributedVars() []Variable {
	var out []Variable
	for _, v := range p.Variables {
		if v.Distributed {
			out = append(out, v)
		}
	}
	return out
}

// GlobalElems returns the element (row) count that a distribution must
// partition: the paper distributes one dimension of the primary dataset,
// and all distributed variables of an application share it.
func (p *Program) GlobalElems() int {
	for _, v := range p.Variables {
		if v.Distributed {
			return v.Elems
		}
	}
	return 0
}

// Validate checks structural invariants: positive iteration and tile
// counts, stages referencing declared variables, pipelined sections having
// multiple tiles, and consistent element counts across distributed
// variables.
func (p *Program) Validate() error {
	if p.Iterations <= 0 {
		return fmt.Errorf("program %q: Iterations %d <= 0", p.Name, p.Iterations)
	}
	if p.WorkUnitCost <= 0 {
		return fmt.Errorf("program %q: WorkUnitCost %v <= 0", p.Name, p.WorkUnitCost)
	}
	if p.IterWeights != nil {
		if len(p.IterWeights) != p.Iterations {
			return fmt.Errorf("program %q: %d IterWeights for %d iterations", p.Name, len(p.IterWeights), p.Iterations)
		}
		for i, w := range p.IterWeights {
			if w <= 0 {
				return fmt.Errorf("program %q: IterWeights[%d] = %v <= 0", p.Name, i, w)
			}
		}
	}
	elems := -1
	for _, v := range p.Variables {
		if v.Elems <= 0 || v.ElemBytes <= 0 {
			return fmt.Errorf("program %q: variable %q has non-positive shape", p.Name, v.Name)
		}
		if v.Distributed {
			if elems == -1 {
				elems = v.Elems
			} else if v.Elems != elems {
				return fmt.Errorf("program %q: distributed variables disagree on element count (%d vs %d)", p.Name, elems, v.Elems)
			}
		}
	}
	for si, s := range p.Sections {
		if s.Tiles <= 0 {
			return fmt.Errorf("program %q section %d: Tiles %d <= 0", p.Name, si, s.Tiles)
		}
		if s.Comm == CommPipeline && s.Tiles < 2 {
			return fmt.Errorf("program %q section %q: pipelined section needs >1 tile", p.Name, s.Name)
		}
		if s.Comm != CommPipeline && s.Tiles != 1 {
			return fmt.Errorf("program %q section %q: non-pipelined section must have 1 tile", p.Name, s.Name)
		}
		for _, st := range s.Stages {
			if st.WorkPerElem < 0 {
				return fmt.Errorf("program %q stage %q: negative work", p.Name, st.Name)
			}
			for _, u := range st.Uses {
				if _, err := p.Var(u.Name); err != nil {
					return fmt.Errorf("program %q stage %q: %v", p.Name, st.Name, err)
				}
			}
		}
	}
	return nil
}
