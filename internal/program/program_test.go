package program

import (
	"strings"
	"testing"
)

func validProgram() *Program {
	return &Program{
		Name: "p",
		Variables: []Variable{
			{Name: "A", ElemBytes: 64, Elems: 100, Distributed: true},
			{Name: "x", ElemBytes: 8, Elems: 100},
		},
		Sections: []Section{
			{Name: "s0", Tiles: 1, Stages: []Stage{{Name: "st", WorkPerElem: 1, Uses: []VarRef{{Name: "A", Write: true}}}}, Comm: CommNearestNeighbor, MsgBytesPerNeighbor: 64},
			{Name: "s1", Tiles: 4, Stages: []Stage{{Name: "dp", WorkPerElem: 2}}, Comm: CommPipeline, MsgBytesPerNeighbor: 16},
			{Name: "s2", Tiles: 1, Stages: []Stage{{Name: "red"}}, Comm: CommReduction, ReduceBytes: 8},
		},
		Iterations:   10,
		WorkUnitCost: 1e-6,
	}
}

func TestValidProgramValidates(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVarLookup(t *testing.T) {
	p := validProgram()
	v, err := p.Var("A")
	if err != nil || v.Name != "A" {
		t.Fatalf("Var(A) = %v, %v", v, err)
	}
	if _, err := p.Var("nope"); err == nil {
		t.Fatal("unknown var did not error")
	}
	if got := p.MustVar("x"); got.ElemBytes != 8 {
		t.Fatal("MustVar wrong")
	}
}

func TestMustVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	validProgram().MustVar("nope")
}

func TestDistributedVars(t *testing.T) {
	dv := validProgram().DistributedVars()
	if len(dv) != 1 || dv[0].Name != "A" {
		t.Fatalf("DistributedVars = %v", dv)
	}
}

func TestGlobalElems(t *testing.T) {
	if validProgram().GlobalElems() != 100 {
		t.Fatal("GlobalElems wrong")
	}
	empty := &Program{Name: "e"}
	if empty.GlobalElems() != 0 {
		t.Fatal("no distributed vars should give 0")
	}
}

func TestVariableTotalBytes(t *testing.T) {
	v := Variable{ElemBytes: 64, Elems: 100}
	if v.TotalBytes() != 6400 {
		t.Fatal("TotalBytes wrong")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		errSub string
	}{
		{"zero iterations", func(p *Program) { p.Iterations = 0 }, "Iterations"},
		{"zero unit cost", func(p *Program) { p.WorkUnitCost = 0 }, "WorkUnitCost"},
		{"bad variable shape", func(p *Program) { p.Variables[0].Elems = 0 }, "shape"},
		{"elem count mismatch", func(p *Program) {
			p.Variables = append(p.Variables, Variable{Name: "B", ElemBytes: 8, Elems: 50, Distributed: true})
		}, "disagree"},
		{"zero tiles", func(p *Program) { p.Sections[0].Tiles = 0 }, "Tiles"},
		{"pipeline single tile", func(p *Program) { p.Sections[1].Tiles = 1 }, "tile"},
		{"non-pipeline multi tile", func(p *Program) { p.Sections[0].Tiles = 2 }, "1 tile"},
		{"negative work", func(p *Program) { p.Sections[0].Stages[0].WorkPerElem = -1 }, "negative work"},
		{"unknown stage var", func(p *Program) { p.Sections[0].Stages[0].Uses[0].Name = "zzz" }, "unknown variable"},
	}
	for _, c := range cases {
		p := validProgram()
		c.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errSub)
		}
	}
}

func TestCommPatternString(t *testing.T) {
	cases := map[CommPattern]string{
		CommNone:            "none",
		CommNearestNeighbor: "nearest-neighbor",
		CommPipeline:        "pipeline",
		CommReduction:       "reduction",
		CommPattern(99):     "CommPattern(99)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}
