package mpi

// File operations: the MPI-IO analogue. Applications make explicit calls
// to read and write their local arrays (§3.1: "we assume the applications
// make explicit calls to read and write from disk"), and these calls are
// what MPI-Jack intercepts in Figure 3 to associate I/O latencies with
// variable IDs.

// FileRead synchronously reads n bytes of variable v at byte offset off
// from the rank's local disk and returns them.
func (r *Rank) FileRead(v string, off, n int) []byte {
	ci := &CallInfo{Kind: CallFileRead, Var: v, Bytes: n}
	r.pre(ci)
	data, _ := r.disk.Read(r.clk, v, off, n)
	r.post(ci)
	return data
}

// FileWrite synchronously writes data into variable v at byte offset off.
func (r *Rank) FileWrite(v string, off int, data []byte) {
	ci := &CallInfo{Kind: CallFileWrite, Var: v, Bytes: len(data)}
	r.pre(ci)
	r.disk.Write(r.clk, v, off, data)
	r.post(ci)
}

// FilePrefetchIssue starts an asynchronous read of variable v and returns
// a handle for FilePrefetchWait. Under the instrumentation transform
// (disksim.ModeInstrument) the issue blocks like a synchronous read, as in
// Figure 5.
func (r *Rank) FilePrefetchIssue(v string, off, n int) int {
	ci := &CallInfo{Kind: CallPrefetchIssue, Var: v, Bytes: n}
	r.pre(ci)
	tag := r.disk.PrefetchIssue(r.clk, v, off, n)
	r.post(ci)
	return tag
}

// FilePrefetchWait blocks until the prefetch completes and returns its
// data. The CallInfo's Wait field carries the unmasked latency (zero when
// overlap computation fully hid the read — the Le = 0 case of Equation 2).
func (r *Rank) FilePrefetchWait(v string, tag int) []byte {
	ci := &CallInfo{Kind: CallPrefetchWait, Var: v}
	r.pre(ci)
	data, waited := r.disk.PrefetchWait(r.clk, tag)
	ci.Bytes = len(data)
	ci.Wait = waited
	r.post(ci)
	return data
}
