package mpi

// Event-mode primitives: the same runtime operations as the goroutine
// core, restructured as resumable state machines for the discrete-event
// engine (internal/sched, DESIGN.md §5.13).
//
// The only operation that blocks on another rank is Recv; everything
// else advances the calling rank's own clock. So a rank's program can
// be interpreted as straight-line code with explicit park points at
// each receive: TryRecv either completes a receive exactly like Recv,
// or parks the rank in the scheduler and returns false, to be retried
// after the matching Send wakes it.
//
// Bit-identity with the goroutine core follows from two properties,
// both enforced here:
//
//  1. Per-rank op order is identical — every pre/post hook, clock
//     advance, and noise draw happens in the same program order, with
//     pre fired once per logical call (before the first match attempt,
//     as Recv fires it before mailbox.take blocks).
//  2. Message matching is identical — sched's per-(src,dst) FIFO with
//     tag filtering is byte-for-byte the mailbox.take rule, and the
//     collective state machines replay the exact binomial-tree
//     schedule (same internal tags, same send/recv sequence) of
//     collectives.go.
//
// Since all cross-rank data flow is message timestamps, any dispatch
// order the scheduler picks yields the same clocks, traces and
// recorder contents.

import "mheta/internal/sched"

// RecvOp is one event-mode receive in flight. The zero value with Src
// and Tag set is ready for the first TryRecv; the op keeps the pre-fired
// CallInfo across park/resume so profiler hooks fire exactly once per
// logical receive, like Recv.
type RecvOp struct {
	Src, Tag int
	ci       CallInfo
	started  bool
}

// TryRecv attempts the receive described by op. On a match it performs
// the full Recv timing (wait to arrival, charge or(m), Post hook) and
// returns the payload. On a miss it parks the rank on (src, tag) in the
// bound scheduler and returns false; the driver must suspend the rank
// until the scheduler dispatches it again, then retry the same op.
func (r *Rank) TryRecv(op *RecvOp) ([]byte, bool) {
	s := r.world.sched
	if s == nil {
		panic("mpi: TryRecv without a bound scheduler")
	}
	if op.Src == r.rank {
		panic("mpi: Recv from self")
	}
	if !op.started {
		op.ci = CallInfo{Kind: CallRecv, Peer: op.Src, Tag: op.Tag}
		r.pre(&op.ci)
		op.started = true
	}
	m, ok := s.TryRecv(op.Src, r.rank, op.Tag)
	if !ok {
		s.Park(r.rank, op.Src, op.Tag, r.clk.Now())
		return nil, false
	}
	op.ci.Bytes = len(m.Data)
	op.ci.Wait = r.clk.WaitUntil(m.Arrival)
	r.clk.Advance(r.netNz.Perturb(r.world.net.RecvCost(op.Src, r.rank, len(m.Data))))
	r.post(&op.ci)
	return m.Data, true
}

// Scheduler returns the bound scheduler, or nil outside event mode.
func (w *World) Scheduler() *sched.Scheduler { return w.sched }

// ReduceSM is Reduce as a resumable state machine: same binomial tree,
// same internal tag, same hook sequence. Step returns false when the
// rank parked mid-tree; retry after the scheduler redisppatches.
type ReduceSM struct {
	Root, Tag int
	Op        ReduceOp
	Vals      []float64

	started bool
	ci      CallInfo
	acc     []float64
	mask    int
	recv    *RecvOp
}

// Step advances the reduction until it completes (true) or parks
// (false).
func (s *ReduceSM) Step(r *Rank) bool {
	n := r.Size()
	if !s.started {
		s.ci = CallInfo{Kind: CallReduce, Peer: s.Root, Bytes: 8 * len(s.Vals), Tag: s.Tag}
		r.pre(&s.ci)
		s.acc = append([]float64(nil), s.Vals...)
		s.mask = 1
		s.started = true
	}
	rel := (r.rank - s.Root + n) % n
	itag := reservedTagBase + s.Tag
	for ; s.mask < n; s.mask <<= 1 {
		if rel&s.mask != 0 {
			parent := ((rel - s.mask) + s.Root) % n
			r.Send(parent, itag, encodeF64s(s.acc))
			s.acc = nil
			break
		}
		if rel+s.mask < n {
			child := (rel + s.mask + s.Root) % n
			if s.recv == nil {
				s.recv = &RecvOp{Src: child, Tag: itag}
			}
			data, ok := r.TryRecv(s.recv)
			if !ok {
				return false
			}
			s.recv = nil
			got := decodeF64s(data)
			for i := range s.acc {
				s.acc[i] = s.Op(s.acc[i], got[i])
			}
		}
	}
	r.post(&s.ci)
	return true
}

// Result returns the combined vector on the root, nil elsewhere
// (Reduce's contract). Valid once Step returned true.
func (s *ReduceSM) Result() []float64 { return s.acc }

// BcastSM is Bcast as a resumable state machine (one park point: the
// receive from the parent; forwarding to children never blocks).
type BcastSM struct {
	Root, Tag int
	Vals      []float64

	started    bool
	ci         CallInfo
	mask       int
	forwarding bool
	recv       *RecvOp
	vals       []float64
}

// Step advances the broadcast until it completes (true) or parks
// (false).
func (s *BcastSM) Step(r *Rank) bool {
	n := r.Size()
	rel := (r.rank - s.Root + n) % n
	itag := reservedTagBase + (1 << 20) + s.Tag
	if !s.started {
		s.ci = CallInfo{Kind: CallBcast, Peer: s.Root, Bytes: 8 * len(s.Vals), Tag: s.Tag}
		r.pre(&s.ci)
		s.vals = s.Vals
		s.mask = 1
		s.started = true
	}
	if !s.forwarding {
		for s.mask < n {
			if rel&s.mask != 0 {
				parent := ((rel &^ s.mask) + s.Root) % n
				if s.recv == nil {
					s.recv = &RecvOp{Src: parent, Tag: itag}
				}
				data, ok := r.TryRecv(s.recv)
				if !ok {
					return false
				}
				s.recv = nil
				s.vals = decodeF64s(data)
				break
			}
			s.mask <<= 1
		}
		s.forwarding = true
		s.mask >>= 1
	}
	for ; s.mask >= 1; s.mask >>= 1 {
		if rel+s.mask < n && rel&(s.mask-1) == 0 && rel&s.mask == 0 {
			child := (rel + s.mask + s.Root) % n
			r.Send(child, itag, encodeF64s(s.vals))
		}
	}
	r.post(&s.ci)
	return true
}

// Result returns the broadcast vector. Valid once Step returned true.
func (s *BcastSM) Result() []float64 { return s.vals }

// AllreduceSM composes ReduceSM to rank 0 with BcastSM from rank 0,
// exactly like Allreduce.
type AllreduceSM struct {
	Tag  int
	Op   ReduceOp
	Vals []float64

	reduce *ReduceSM
	bcast  *BcastSM
}

// Step advances the allreduce until it completes (true) or parks
// (false).
func (s *AllreduceSM) Step(r *Rank) bool {
	if s.bcast == nil {
		if s.reduce == nil {
			s.reduce = &ReduceSM{Root: 0, Tag: s.Tag, Op: s.Op, Vals: s.Vals}
		}
		if !s.reduce.Step(r) {
			return false
		}
		acc := s.reduce.Result()
		if r.rank != 0 {
			acc = make([]float64, len(s.Vals))
		}
		s.bcast = &BcastSM{Root: 0, Tag: s.Tag, Vals: acc}
	}
	return s.bcast.Step(r)
}

// Result returns the combined vector, identical on every rank. Valid
// once Step returned true.
func (s *AllreduceSM) Result() []float64 { return s.bcast.Result() }

// BarrierSM wraps AllreduceSM in the Barrier CallInfo, exactly like
// Barrier.
type BarrierSM struct {
	Tag int

	started bool
	ci      CallInfo
	all     *AllreduceSM
}

// Step advances the barrier until it completes (true) or parks (false).
func (s *BarrierSM) Step(r *Rank) bool {
	if !s.started {
		s.ci = CallInfo{Kind: CallBarrier, Tag: s.Tag}
		r.pre(&s.ci)
		s.all = &AllreduceSM{Tag: s.Tag + (1 << 21), Op: OpSum, Vals: nil}
		s.started = true
	}
	if !s.all.Step(r) {
		return false
	}
	r.post(&s.ci)
	return true
}
