package mpi

import (
	"math"
	"testing"
)

func TestReduceSumToRoot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		w := NewWorld(testSpec(n), 1, 0)
		results := make([][]float64, n)
		w.Run(func(r *Rank) {
			vals := []float64{float64(r.Rank() + 1), 1}
			results[r.Rank()] = r.Reduce(0, 3, OpSum, vals)
		})
		want := float64(n*(n+1)) / 2
		if results[0][0] != want || results[0][1] != float64(n) {
			t.Fatalf("n=%d: root got %v, want [%v %v]", n, results[0], want, n)
		}
		for p := 1; p < n; p++ {
			if results[p] != nil {
				t.Fatalf("n=%d: non-root rank %d got %v", n, p, results[p])
			}
		}
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	const n = 6
	w := NewWorld(testSpec(n), 1, 0)
	results := make([][]float64, n)
	w.Run(func(r *Rank) {
		results[r.Rank()] = r.Reduce(3, 4, OpSum, []float64{1})
	})
	if results[3] == nil || results[3][0] != n {
		t.Fatalf("root 3 got %v", results[3])
	}
}

func TestReduceOps(t *testing.T) {
	const n = 4
	w := NewWorld(testSpec(n), 1, 0)
	var maxRes, minRes []float64
	w.Run(func(r *Rank) {
		v := float64(r.Rank())
		m1 := r.Reduce(0, 1, OpMax, []float64{v})
		m2 := r.Reduce(0, 2, OpMin, []float64{v})
		if r.Rank() == 0 {
			maxRes, minRes = m1, m2
		}
	})
	if maxRes[0] != 3 || minRes[0] != 0 {
		t.Fatalf("max %v min %v", maxRes, minRes)
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(testSpec(n), 1, 0)
		results := make([][]float64, n)
		w.Run(func(r *Rank) {
			var vals []float64
			if r.Rank() == 0 {
				vals = []float64{3.25, -1}
			} else {
				vals = make([]float64, 2)
			}
			results[r.Rank()] = r.Bcast(0, 5, vals)
		})
		for p := 0; p < n; p++ {
			if results[p][0] != 3.25 || results[p][1] != -1 {
				t.Fatalf("n=%d rank %d got %v", n, p, results[p])
			}
		}
	}
}

func TestAllreduceEveryoneGetsSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8} {
		w := NewWorld(testSpec(n), 1, 0)
		results := make([][]float64, n)
		w.Run(func(r *Rank) {
			results[r.Rank()] = r.Allreduce(7, OpSum, []float64{float64(r.Rank() + 1)})
		})
		want := float64(n*(n+1)) / 2
		for p := 0; p < n; p++ {
			if results[p][0] != want {
				t.Fatalf("n=%d rank %d got %v, want %v", n, p, results[p][0], want)
			}
		}
	}
}

func TestAllreduceGatherPattern(t *testing.T) {
	// Zero-padded sum reduction assembles a distributed vector — the
	// pattern CG and Lanczos use for their p/v gathers.
	const n = 4
	w := NewWorld(testSpec(n), 1, 0)
	results := make([][]float64, n)
	w.Run(func(r *Rank) {
		vals := make([]float64, n)
		vals[r.Rank()] = float64(10 + r.Rank())
		results[r.Rank()] = r.Allreduce(8, OpSum, vals)
	})
	for p := 0; p < n; p++ {
		for i := 0; i < n; i++ {
			if results[p][i] != float64(10+i) {
				t.Fatalf("rank %d slot %d = %v", p, i, results[p][i])
			}
		}
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	const n = 4
	w := NewWorld(testSpec(n), 1, 0)
	times := w.Run(func(r *Rank) {
		// Rank 2 is far ahead; everyone must wait for it.
		if r.Rank() == 2 {
			r.Compute(100, 0.01) // 1s
		}
		r.Barrier(1)
	})
	for p := 0; p < n; p++ {
		if float64(times[p]) < 1.0 {
			t.Fatalf("rank %d finished barrier at %v, before the straggler", p, times[p])
		}
	}
}

func TestBarrierMakesLaterRecvTimingsExact(t *testing.T) {
	// After a barrier, rank clocks differ only by tree overheads (µs),
	// so this documents the collectives' skew is bounded.
	const n = 8
	w := NewWorld(testSpec(n), 1, 0)
	times := w.Run(func(r *Rank) {
		r.Compute(float64(r.Rank()), 0.001)
		r.Barrier(1)
	})
	max, min := float64(times[0]), float64(times[0])
	for _, tm := range times {
		if float64(tm) > max {
			max = float64(tm)
		}
		if float64(tm) < min {
			min = float64(tm)
		}
	}
	if max-min > 0.01 {
		t.Fatalf("post-barrier skew %v too large", max-min)
	}
}

func TestBcastBytes(t *testing.T) {
	const n = 5
	w := NewWorld(testSpec(n), 1, 0)
	results := make([][]byte, n)
	w.Run(func(r *Rank) {
		var data []byte
		if r.Rank() == 0 {
			data = []byte("broadcast me")
		}
		results[r.Rank()] = r.BcastBytes(0, 6, data)
	})
	for p := 0; p < n; p++ {
		if string(results[p]) != "broadcast me" {
			t.Fatalf("rank %d got %q", p, results[p])
		}
	}
}

func TestReduceNaNSafety(t *testing.T) {
	// Collectives must pass values through unchanged, including specials.
	const n = 2
	w := NewWorld(testSpec(n), 1, 0)
	var got []float64
	w.Run(func(r *Rank) {
		v := math.Inf(1)
		if r.Rank() == 1 {
			v = 1
		}
		res := r.Reduce(0, 1, OpMax, []float64{v})
		if r.Rank() == 0 {
			got = res
		}
	})
	if !math.IsInf(got[0], 1) {
		t.Fatalf("got %v", got)
	}
}

func TestEncodeDecodeF64s(t *testing.T) {
	in := []float64{0, -1.5, math.Pi, math.MaxFloat64}
	out := decodeF64s(encodeF64s(in))
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}
