package mpi

import (
	"sync"
	"testing"

	"mheta/internal/cluster"
	"mheta/internal/netsim"
	"mheta/internal/vclock"
)

// testSpec returns a small homogeneous cluster with exact (noise-free)
// costs so timing assertions can be sharp.
func testSpec(n int) cluster.Spec {
	s, _ := cluster.Named("DC")
	spec := cluster.Spec{Name: "test", Net: s.Net, Disk: s.Disk}
	for i := 0; i < n; i++ {
		spec.Nodes = append(spec.Nodes, cluster.NodeSpec{CPUPower: 1, MemoryBytes: 1 << 20, DiskScale: 1})
	}
	return spec
}

func TestSendRecvDelivers(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 5, []byte("payload"))
		case 1:
			got = r.Recv(0, 5)
		}
	})
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvTimingBlockedReceiver(t *testing.T) {
	spec := testSpec(2)
	w := NewWorld(spec, 1, 0)
	net := spec.Net
	times := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 1, make([]byte, 100))
		case 1:
			r.Recv(0, 1)
		}
	})
	// Receiver finishes at os + wire + or.
	want := float64(net.SendCost(100) + net.TransferTime(100) + net.RecvCost(100))
	if got := float64(times[1]); !close(got, want) {
		t.Fatalf("receiver at %v, want %v", got, want)
	}
	// Sender finishes after just the send overhead.
	if got := float64(times[0]); !close(got, float64(net.SendCost(100))) {
		t.Fatalf("sender at %v", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d > -1e-12 && d < 1e-12
}

func TestRecvTimingLateReceiverPaysNoWait(t *testing.T) {
	spec := testSpec(2)
	w := NewWorld(spec, 1, 0)
	net := spec.Net
	const delay = 1.0
	times := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 1, make([]byte, 100))
		case 1:
			r.Compute(delay, 1) // arrive late: message already there
			r.Recv(0, 1)
		}
	})
	want := delay + float64(net.RecvCost(100))
	if got := float64(times[1]); !close(got, want) {
		t.Fatalf("receiver at %v, want %v", got, want)
	}
}

func TestSendNeverBlocks(t *testing.T) {
	spec := testSpec(2)
	w := NewWorld(spec, 1, 0)
	times := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 100; i++ {
				r.Send(1, 1, make([]byte, 10))
			}
		} else {
			r.Compute(5, 1)
			for i := 0; i < 100; i++ {
				r.Recv(0, 1)
			}
		}
	})
	// Sender's time is 100 sends only, far below the receiver's 5s.
	if times[0] >= 1 {
		t.Fatalf("sender blocked: %v", times[0])
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	var first, second []byte
	w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 1, []byte("one"))
			r.Send(1, 2, []byte("two"))
		case 1:
			second = r.Recv(0, 2) // posted first, matches tag 2
			first = r.Recv(0, 1)
		}
	})
	if string(first) != "one" || string(second) != "two" {
		t.Fatalf("got %q, %q", first, second)
	}
}

func TestFIFOWithinTag(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	var got []string
	w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 1, []byte("a"))
			r.Send(1, 1, []byte("b"))
			r.Send(1, 1, []byte("c"))
		case 1:
			for i := 0; i < 3; i++ {
				got = append(got, string(r.Recv(0, 1)))
			}
		}
	})
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order %v", got)
	}
}

func TestAnyTagMatchesFirst(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 77, []byte("x"))
		case 1:
			got = r.Recv(0, AnyTag)
		}
	})
	if string(got) != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestComputeScalesWithCPUPower(t *testing.T) {
	spec := testSpec(2)
	spec.Nodes[1].CPUPower = 2
	w := NewWorld(spec, 1, 0)
	times := w.Run(func(r *Rank) {
		r.Compute(10, 0.1) // 1s of work at power 1
	})
	if !close(float64(times[0]), 1.0) {
		t.Fatalf("power-1 node took %v", times[0])
	}
	if !close(float64(times[1]), 0.5) {
		t.Fatalf("power-2 node took %v, want 0.5", times[1])
	}
}

func TestSendToSelfPanics(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(0, 1, nil)
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	var got []byte
	w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := []byte{1, 2, 3}
			r.Send(1, 1, buf)
			buf[0] = 99 // must not affect the in-flight message
		case 1:
			r.Compute(1, 1)
			got = r.Recv(0, 1)
		}
	})
	if got[0] != 1 {
		t.Fatal("message aliased the sender's buffer")
	}
}

func TestResetClocks(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	w.Run(func(r *Rank) { r.Compute(1, 1) })
	w.ResetClocks()
	times := w.Run(func(r *Rank) {})
	for _, tm := range times {
		if tm != 0 {
			t.Fatalf("clock not reset: %v", tm)
		}
	}
}

func TestWorldRunPropagatesPanic(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			panic("boom")
		}
	})
}

type countingProfiler struct {
	mu    sync.Mutex
	pre   map[CallKind]int
	post  map[CallKind]int
	waits vclock.Duration
}

func newCountingProfiler() *countingProfiler {
	return &countingProfiler{pre: map[CallKind]int{}, post: map[CallKind]int{}}
}

func (p *countingProfiler) Pre(ci *CallInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pre[ci.Kind]++
}

func (p *countingProfiler) Post(ci *CallInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.post[ci.Kind]++
	p.waits += ci.Wait
}

func TestProfilerSeesCalls(t *testing.T) {
	w := NewWorld(testSpec(2), 1, 0)
	prof := newCountingProfiler()
	w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.SetProfiler(prof)
		}
		switch r.Rank() {
		case 0:
			r.Compute(0.001, 1)
			r.Send(1, 1, make([]byte, 10))
		case 1:
			r.Recv(0, 1)
			r.Compute(0.001, 1)
		}
	})
	if prof.post[CallRecv] != 1 || prof.post[CallCompute] != 1 {
		t.Fatalf("profiler counts %v", prof.post)
	}
	if prof.waits <= 0 {
		t.Fatal("blocked recv must report positive wait")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []vclock.Time {
		w := NewWorld(cluster.HY1(8), 42, 0.02)
		return w.Run(func(r *Rank) {
			n := r.Size()
			r.Compute(float64(r.Rank()+1), 0.01)
			if r.Rank() < n-1 {
				r.Send(r.Rank()+1, 1, make([]byte, 64))
			}
			if r.Rank() > 0 {
				r.Recv(r.Rank()-1, 1)
			}
			r.Allreduce(9, OpSum, []float64{1})
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v vs %v — emulation not deterministic", i, a[i], b[i])
		}
	}
}

func TestMemoryBytesExposed(t *testing.T) {
	spec := testSpec(2)
	spec.Nodes[1].MemoryBytes = 12345
	w := NewWorld(spec, 1, 0)
	if w.Rank(1).MemoryBytes() != 12345 {
		t.Fatal("MemoryBytes wrong")
	}
}

func TestCallKindString(t *testing.T) {
	if CallSend.String() != "Send" || CallPrefetchWait.String() != "PrefetchWait" {
		t.Fatal("CallKind strings wrong")
	}
	if CallKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestSendrecv(t *testing.T) {
	spec := testSpec(2)
	w := NewWorld(spec, 1, 0)
	var got0, got1 []byte
	w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			got0 = r.Sendrecv(1, 1, []byte("from0"), 1, 2)
		case 1:
			got1 = r.Sendrecv(0, 2, []byte("from1"), 0, 1)
		}
	})
	if string(got0) != "from1" || string(got1) != "from0" {
		t.Fatalf("sendrecv got %q, %q", got0, got1)
	}
}

func TestNetworkLinkOverride(t *testing.T) {
	// Sanity check that netsim integration honours per-link params.
	p := netsim.DefaultParams()
	nw := netsim.New(2, p, nil)
	slow := p
	slow.Latency = 1
	nw.SetLink(0, 1, slow)
	if nw.TransferTime(0, 1, 0) != 1 {
		t.Fatal("per-link override lost")
	}
}

func TestInterferenceInflatesCompute(t *testing.T) {
	spec := testSpec(2)
	w := NewWorld(spec, 1, 0)
	times := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.SetInterference(0.5, 0.25)
		}
		for i := 0; i < 100; i++ {
			r.Compute(1, 0.01) // 1s total at factor 1
		}
	})
	if !close(float64(times[0]), 1.0) {
		t.Fatalf("idle rank took %v, want 1s", times[0])
	}
	// Loaded rank: factor averages ≈1.25 over the wave.
	if times[1] <= 1.05 || times[1] >= 1.5 {
		t.Fatalf("loaded rank took %v, want ≈1.25s", times[1])
	}
}

func TestInterferenceDeterministic(t *testing.T) {
	run := func() vclock.Time {
		w := NewWorld(testSpec(1), 1, 0)
		return w.Run(func(r *Rank) {
			r.SetInterference(0.3, 0.1)
			for i := 0; i < 50; i++ {
				r.Compute(1, 0.005)
			}
		})[0]
	}
	if run() != run() {
		t.Fatal("interference not deterministic")
	}
}

func TestFileOpsThroughRank(t *testing.T) {
	spec := testSpec(2)
	w := NewWorld(spec, 1, 0)
	var got []byte
	var waited bool
	w.Run(func(r *Rank) {
		if r.Rank() != 0 {
			return
		}
		r.Disk().Create("v", 256)
		r.FileWrite("v", 8, []byte{1, 2, 3})
		got = r.FileRead("v", 8, 3)
		tag := r.FilePrefetchIssue("v", 0, 64)
		data := r.FilePrefetchWait("v", tag)
		waited = len(data) == 64
		if r.Now() <= 0 {
			t.Error("file ops charged no time")
		}
		_ = r.CPUPower()
		_ = r.Clock()
		_ = r.Disk()
	})
	if string(got) != string([]byte{1, 2, 3}) || !waited {
		t.Fatalf("file ops data wrong: %v %v", got, waited)
	}
}

func TestWorldSpecAndWaitUntil(t *testing.T) {
	spec := testSpec(3)
	w := NewWorld(spec, 1, 0)
	if w.Spec().N() != 3 {
		t.Fatal("Spec wrong")
	}
	w.Run(func(r *Rank) {
		if d := r.WaitUntil(0.5); float64(d) != 0.5 {
			t.Errorf("WaitUntil returned %v", d)
		}
	})
}

func TestCallInfoDuration(t *testing.T) {
	ci := CallInfo{Start: 1, End: 3.5}
	if ci.Duration() != 2.5 {
		t.Fatalf("Duration %v", ci.Duration())
	}
}
