package mpi

import (
	"encoding/binary"
	"math"

	"mheta/internal/vclock"
)

// Collectives are composed from point-to-point operations over binomial
// trees, the same construction LAM-MPI used for small communicators. The
// MHETA core reproduces the identical tree arithmetically (see
// core.reduceTree), so predicted and actual reduction costs agree up to
// noise — our stand-in for the dissertation's reduction equations, which
// the paper omits for space.

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// OpSum adds; OpMax takes the maximum; OpMin the minimum.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin ReduceOp = func(a, b float64) float64 { return math.Min(a, b) }
)

func encodeF64s(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func decodeF64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// Reduce combines each rank's vals element-wise with op onto the root
// rank over a binomial tree. Non-root ranks return nil; the root returns
// the combined vector. Every rank in the world must call Reduce with the
// same tag, root, op and length.
func (r *Rank) Reduce(root, tag int, op ReduceOp, vals []float64) []float64 {
	ci := &CallInfo{Kind: CallReduce, Peer: root, Bytes: 8 * len(vals), Tag: tag}
	r.pre(ci)
	acc := append([]float64(nil), vals...)
	n := r.Size()
	// Work in root-relative rank space so any root works.
	rel := (r.rank - root + n) % n
	itag := reservedTagBase + tag
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel - mask) + root) % n
			r.Send(parent, itag, encodeF64s(acc))
			acc = nil
			break
		}
		if rel+mask < n {
			child := (rel + mask + root) % n
			got := decodeF64s(r.Recv(child, itag))
			for i := range acc {
				acc[i] = op(acc[i], got[i])
			}
		}
	}
	r.post(ci)
	return acc
}

// Bcast distributes vals from root to all ranks over a binomial tree and
// returns the received (or original, on root) vector.
func (r *Rank) Bcast(root, tag int, vals []float64) []float64 {
	ci := &CallInfo{Kind: CallBcast, Peer: root, Bytes: 8 * len(vals), Tag: tag}
	r.pre(ci)
	n := r.Size()
	rel := (r.rank - root + n) % n
	itag := reservedTagBase + (1 << 20) + tag
	// Find the level at which this rank receives: the lowest set bit.
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % n
			vals = decodeF64s(r.Recv(parent, itag))
			break
		}
		mask <<= 1
	}
	// Forward to children below that level.
	for mask >>= 1; mask >= 1; mask >>= 1 {
		if rel+mask < n && rel&(mask-1) == 0 && rel&mask == 0 {
			child := (rel + mask + root) % n
			r.Send(child, itag, encodeF64s(vals))
		}
	}
	r.post(ci)
	return vals
}

// Allreduce is Reduce to rank 0 followed by Bcast, the structure the MHETA
// reduction model mirrors.
func (r *Rank) Allreduce(tag int, op ReduceOp, vals []float64) []float64 {
	acc := r.Reduce(0, tag, op, vals)
	if r.rank != 0 {
		acc = make([]float64, len(vals))
	}
	return r.Bcast(0, tag, acc)
}

// Barrier synchronises all ranks: an empty Allreduce.
func (r *Rank) Barrier(tag int) {
	ci := &CallInfo{Kind: CallBarrier, Tag: tag}
	r.pre(ci)
	r.Allreduce(tag+(1<<21), OpSum, nil)
	r.post(ci)
}

// BcastBytes distributes raw bytes from root (used for data placement
// validation in tests; charges normal message costs).
func (r *Rank) BcastBytes(root, tag int, data []byte) []byte {
	// Reuse the float64 tree by padding to 8-byte multiples would distort
	// sizes; implement directly instead.
	ci := &CallInfo{Kind: CallBcast, Peer: root, Bytes: len(data), Tag: tag}
	r.pre(ci)
	n := r.Size()
	rel := (r.rank - root + n) % n
	itag := reservedTagBase + (1 << 22) + tag
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % n
			data = r.Recv(parent, itag)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask >= 1; mask >>= 1 {
		if rel+mask < n && rel&(mask-1) == 0 && rel&mask == 0 {
			child := (rel + mask + root) % n
			r.Send(child, itag, data)
		}
	}
	r.post(ci)
	return data
}

// WaitUntil advances the rank's clock to at least t, returning the waited
// span. Harness helper for aligning phase starts.
func (r *Rank) WaitUntil(t vclock.Time) vclock.Duration {
	return r.clk.WaitUntil(t)
}
