// Package mpi is the message-passing runtime the applications run on: an
// in-process analogue of LAM-MPI (the paper's substrate) in which each
// rank is a goroutine with its own virtual clock, disk, and noise streams.
//
// Timing semantics mirror what MHETA models (§4.2.2):
//
//   - Send charges the sender os(m) = fixed overhead + per-byte copy cost
//     and is asynchronous — the message is buffered, the sender never
//     blocks ("both nodes perform their sends before blocking").
//   - A message becomes available at the receiver at
//     sendFinish + transferTime.
//   - Recv blocks (in virtual time) until availability, then charges the
//     receiver or(m). The blocked span is the Twait of Equation 3/4.
//   - Collectives are built from Send/Recv over a binomial tree, so their
//     virtual-time behaviour follows from the point-to-point rules and the
//     model can reproduce it arithmetically.
//
// Cross-goroutine coupling happens only through message timestamps, which
// is sufficient because the applications' communication is deterministic:
// every Recv names its source and tag, so matching is unambiguous and the
// virtual-time outcome is independent of the host scheduler.
package mpi

import (
	"fmt"
	"sync"

	"mheta/internal/cluster"
	"mheta/internal/disksim"
	"mheta/internal/netsim"
	"mheta/internal/sched"
	"mheta/internal/vclock"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// Tags at or above reservedTagBase are reserved for collectives.
const reservedTagBase = 1 << 28

// CallKind identifies an intercepted runtime operation for the profiling
// layer (our PMPI analogue; see package mpijack).
type CallKind int

const (
	CallSend CallKind = iota
	CallRecv
	CallReduce
	CallBcast
	CallBarrier
	CallFileRead
	CallFileWrite
	CallPrefetchIssue
	CallPrefetchWait
	CallCompute
)

var callKindNames = [...]string{
	"Send", "Recv", "Reduce", "Bcast", "Barrier",
	"FileRead", "FileWrite", "PrefetchIssue", "PrefetchWait", "Compute",
}

// String implements fmt.Stringer.
func (k CallKind) String() string {
	if int(k) < len(callKindNames) {
		return callKindNames[k]
	}
	return fmt.Sprintf("CallKind(%d)", int(k))
}

// CallInfo describes one intercepted operation. The profiling layer's Pre
// hook sees Start filled in; Post sees End and Wait as well.
type CallInfo struct {
	Kind  CallKind
	Rank  int
	Peer  int    // destination/source rank, or tree root for collectives
	Bytes int    // payload size
	Var   string // variable name for file operations
	Tag   int
	Start vclock.Time
	End   vclock.Time
	// Wait is the virtual time the rank spent blocked (Recv, PrefetchWait)
	// as opposed to busy.
	Wait vclock.Duration
}

// Duration returns the call's total virtual span.
func (c *CallInfo) Duration() vclock.Duration { return vclock.Duration(c.End - c.Start) }

// Profiler intercepts runtime calls, PMPI-style. Implementations must be
// cheap; they run on every operation of the instrumented rank.
type Profiler interface {
	Pre(*CallInfo)
	Post(*CallInfo)
}

type message struct {
	tag     int
	data    []byte
	arrival vclock.Time
}

// mailbox is an unbounded FIFO of messages for one (src,dst) pair.
// Unbounded buffering keeps sends non-blocking, matching the model's
// assumption that send overhead is paid immediately and the message is
// then "on route".
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message //mheta:guardedby mu
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching tag (or the first
// message of any tag when tag == AnyTag), blocking until one exists.
// Per-pair FIFO order among equal tags is preserved, as in MPI.
func (m *mailbox) take(tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.msgs {
			if tag == AnyTag || msg.tag == tag {
				m.msgs = append(m.msgs[:i], m.msgs[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// World is one emulated cluster run: ranks, mailboxes, network and disks.
type World struct {
	spec  cluster.Spec
	net   *netsim.Network
	ranks []*Rank
	// Mailboxes are created lazily per communicating (src,dst) pair: the
	// applications' patterns (chains, binomial trees) touch O(n·log n)
	// pairs, so eager n² allocation would dominate memory at 10k+ ranks.
	boxMu sync.Mutex
	boxes map[uint64]*mailbox //mheta:guardedby boxMu
	// sched, when bound, replaces goroutine mailbox delivery with the
	// discrete-event scheduler (see BindScheduler).
	sched *sched.Scheduler
}

// NewWorld builds a world for the given cluster spec. seed drives all
// noise streams; noiseAmp is the perturbation amplitude (0 disables noise,
// giving the model's idealised timing — used by the ablation benches).
func NewWorld(spec cluster.Spec, seed uint64, noiseAmp float64) *World {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n := spec.N()
	root := vclock.NewNoise(seed, noiseAmp)
	// The network's cost model is shared and read-only; perturbation
	// happens per rank (netNz below) so concurrent ranks neither race on
	// a noise stream nor make each other's draws schedule-dependent.
	w := &World{
		spec:  spec,
		net:   netsim.New(n, spec.Net, nil),
		boxes: make(map[uint64]*mailbox),
		ranks: make([]*Rank, n),
	}
	for r := 0; r < n; r++ {
		nodeNoise := root.Fork(uint64(r) + 1)
		w.ranks[r] = &Rank{
			world:    w,
			rank:     r,
			clk:      vclock.NewClock(),
			disk:     disksim.New(spec.DiskParams(r), nodeNoise.Fork(1)),
			compNz:   nodeNoise.Fork(2),
			netNz:    nodeNoise.Fork(3),
			cpuPower: spec.Nodes[r].CPUPower,
			memBytes: spec.Nodes[r].MemoryBytes,
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Spec returns the cluster spec the world was built from.
func (w *World) Spec() cluster.Spec { return w.spec }

// Rank returns rank r's handle (for pre-run data placement and post-run
// inspection).
func (w *World) Rank(r int) *Rank { return w.ranks[r] }

// Run executes fn once per rank, concurrently, and returns each rank's
// final virtual time. It panics if any rank panics (after all finish or
// deadlock — application bugs surface as Go deadlock reports).
func (w *World) Run(fn func(r *Rank)) []vclock.Time {
	if w.sched != nil {
		panic("mpi: World.Run while a scheduler is bound")
	}
	var wg sync.WaitGroup
	panics := make([]any, w.Size())
	for i := range w.ranks {
		wg.Add(1)
		//mheta:lifecycle waitgroup
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r.rank] = p
				}
			}()
			fn(r)
		}(w.ranks[i])
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, p))
		}
	}
	times := make([]vclock.Time, w.Size())
	for i, r := range w.ranks {
		times[i] = r.clk.Now()
	}
	return times
}

// ResetClocks rewinds every rank's clock and disk service queue so the
// same world (with data already on disk) can run another phase.
func (w *World) ResetClocks() {
	for _, r := range w.ranks {
		r.clk.Reset()
		r.disk.ResetTiming()
	}
	w.boxMu.Lock()
	w.boxes = make(map[uint64]*mailbox)
	w.boxMu.Unlock()
}

func boxKey(src, dst int) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

// box returns the (src,dst) mailbox, creating it on first use. Both the
// sender and the receiver race to create it, hence the lock; contention
// is negligible because each pair is touched repeatedly after the first
// message.
func (w *World) box(src, dst int) *mailbox {
	key := boxKey(src, dst)
	w.boxMu.Lock()
	b := w.boxes[key]
	if b == nil {
		b = newMailbox()
		w.boxes[key] = b
	}
	w.boxMu.Unlock()
	return b
}

// BindScheduler routes message delivery through the discrete-event
// scheduler s instead of the goroutine mailboxes. While bound, all
// ranks must be driven from s's single dispatch loop (the exec event
// engine): blocking Recv panics — parking receivers use TryRecv — and
// World.Run must not be called.
func (w *World) BindScheduler(s *sched.Scheduler) {
	if s != nil && s.Size() != w.Size() {
		panic(fmt.Sprintf("mpi: scheduler for %d ranks bound to a %d-rank world", s.Size(), w.Size()))
	}
	w.sched = s
}

// UnbindScheduler restores goroutine (blocking) delivery.
func (w *World) UnbindScheduler() { w.sched = nil }

// Rank is one process of the emulated application. All methods must be
// called from the rank's own goroutine (inside World.Run) except the
// data-placement helpers Disk and SetProfiler, which are used before the
// run starts.
type Rank struct {
	world    *World
	rank     int
	clk      *vclock.Clock
	disk     *disksim.Disk
	compNz   *vclock.Noise
	netNz    *vclock.Noise
	cpuPower float64
	memBytes int64
	prof     Profiler
	// Interference models a non-dedicated environment (§3.2 assumes a
	// dedicated one and defers multiprogramming to future work): external
	// load steals CPU, inflating compute times by a deterministic,
	// slowly-varying factor in [1, 1+amp] driven by virtual time with a
	// per-rank phase. Zero amplitude (the default) is the paper's
	// dedicated cluster.
	intfAmp    float64
	intfPeriod float64
}

// Rank returns this rank's id.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.Size() }

// Now returns the rank's current virtual time.
func (r *Rank) Now() vclock.Time { return r.clk.Now() }

// Clock exposes the rank's clock (for harness bookkeeping).
func (r *Rank) Clock() *vclock.Clock { return r.clk }

// Disk exposes the rank's local disk (for data placement and assertions).
func (r *Rank) Disk() *disksim.Disk { return r.disk }

// CPUPower returns the rank's relative CPU power.
func (r *Rank) CPUPower() float64 { return r.cpuPower }

// MemoryBytes returns the node's ICLA memory budget.
func (r *Rank) MemoryBytes() int64 { return r.memBytes }

// SetProfiler attaches a profiling layer (nil detaches).
func (r *Rank) SetProfiler(p Profiler) { r.prof = p }

func (r *Rank) pre(ci *CallInfo) {
	ci.Rank = r.rank
	ci.Start = r.clk.Now()
	if r.prof != nil {
		r.prof.Pre(ci)
	}
}

func (r *Rank) post(ci *CallInfo) {
	ci.End = r.clk.Now()
	if r.prof != nil {
		r.prof.Post(ci)
	}
}

// SetInterference configures non-dedicated-environment load on this rank
// (amplitude ≥ 0; period is the load oscillation in virtual seconds,
// default 1s when ≤ 0). Used by the robustness experiments; the model
// never sees it.
func (r *Rank) SetInterference(amp, period float64) {
	if amp < 0 {
		amp = 0
	}
	if period <= 0 {
		period = 1
	}
	r.intfAmp, r.intfPeriod = amp, period
}

// interferenceFactor is the current external-load multiplier: a smooth
// per-rank phase-shifted wave of virtual time, so it is deterministic and
// uncorrelated across ranks.
func (r *Rank) interferenceFactor() float64 {
	if r.intfAmp == 0 {
		return 1
	}
	x := float64(r.clk.Now())/r.intfPeriod + float64(r.rank)*0.37
	x -= float64(int64(x)) // frac
	// Smooth triangle wave in [0,1]: cheap, deterministic, no math import.
	if x > 0.5 {
		x = 1 - x
	}
	return 1 + r.intfAmp*2*x
}

// Compute advances the rank's clock by work·unitCost/CPUPower, perturbed
// by the rank's compute-noise stream and any configured external load.
// work is in abstract units; unitCost is the application's
// seconds-per-unit on a power-1.0 node.
func (r *Rank) Compute(work, unitCost float64) {
	ci := &CallInfo{Kind: CallCompute}
	r.pre(ci)
	if work > 0 {
		d := vclock.Duration(work * unitCost / r.cpuPower * r.interferenceFactor())
		r.clk.Advance(r.compNz.Perturb(d))
	}
	r.post(ci)
}

// Send transmits data to rank dst with the given tag. It charges the
// sender os(m) and never blocks.
func (r *Rank) Send(dst, tag int, data []byte) {
	if dst == r.rank {
		panic("mpi: Send to self")
	}
	ci := &CallInfo{Kind: CallSend, Peer: dst, Bytes: len(data), Tag: tag}
	r.pre(ci)
	r.clk.Advance(r.netNz.Perturb(r.world.net.SendCost(r.rank, dst, len(data))))
	arrival := r.clk.Now() + vclock.Time(r.netNz.Perturb(r.world.net.TransferTime(r.rank, dst, len(data))))
	payload := append([]byte(nil), data...)
	if s := r.world.sched; s != nil {
		s.Send(r.rank, dst, sched.Msg{Tag: tag, Data: payload, Arrival: arrival})
	} else {
		r.world.box(r.rank, dst).put(message{tag: tag, data: payload, arrival: arrival})
	}
	r.post(ci)
}

// Recv blocks until a matching message from src arrives, advances the
// clock to its arrival time, charges or(m), and returns the payload.
func (r *Rank) Recv(src, tag int) []byte {
	if src == r.rank {
		panic("mpi: Recv from self")
	}
	if r.world.sched != nil {
		panic("mpi: blocking Recv under the event engine; drivers must use TryRecv")
	}
	ci := &CallInfo{Kind: CallRecv, Peer: src, Tag: tag}
	r.pre(ci)
	msg := r.world.box(src, r.rank).take(tag)
	ci.Bytes = len(msg.data)
	ci.Wait = r.clk.WaitUntil(msg.arrival)
	r.clk.Advance(r.netNz.Perturb(r.world.net.RecvCost(src, r.rank, len(msg.data))))
	r.post(ci)
	return msg.data
}

// Sendrecv sends to dst and receives from src (possibly the same rank on
// both sides of a boundary exchange). The send happens first, matching
// the model's assumption that sends precede blocking.
func (r *Rank) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	r.Send(dst, sendTag, data)
	return r.Recv(src, recvTag)
}
