// Package sched is the discrete-event core of the emulator: a central
// scheduler that dispatches ranks from an event heap instead of running
// one goroutine per rank.
//
// The runtime it serves (internal/mpi + internal/exec) has exactly one
// cross-rank blocking primitive — Recv — and every other operation
// (compute, disk I/O, prefetch waits, sends) advances only the calling
// rank's own clock. A rank can therefore be driven as a resumable state
// machine that runs straight-line until it needs a message that has not
// been sent yet, parks, and is woken by the matching Send. Emulating a
// rank then costs a heap push/pop per park/resume rather than a
// goroutine, which is what lets the emulator reach 10k+ ranks in
// seconds (DESIGN.md §5.13).
//
// Determinism contract: dispatch order is a pure function of the event
// set. The heap is keyed by (virtual time, rank, seq) — seq is a global
// push counter that only breaks ties between equal (time, rank) keys,
// which cannot occur while each rank has at most one pending event, so
// dispatch order is independent of insertion order. Message matching is
// per-(src,dst) FIFO with tag filtering, byte-for-byte the semantics of
// the goroutine core's mailbox.take. The scheduler never consults wall
// time or ambient randomness.
package sched

import (
	"fmt"
	"sort"

	"mheta/internal/vclock"
)

// AnyTag matches any message tag in TryRecv and Park (mirrors
// mpi.AnyTag; duplicated here so sched does not import mpi).
const AnyTag = -1

// Msg is one in-flight message between two ranks. Arrival is the
// virtual time at which the message becomes available to the receiver.
type Msg struct {
	Tag     int
	Data    []byte
	Arrival vclock.Time //mheta:units seconds
}

// Stats counts scheduler activity over one run. Events is the number of
// rank dispatches (heap pops); Sends, Parks and Wakes count message
// deliveries, blocked receives and park/wake pairs. MaxHeap is the
// high-water mark of the event heap.
type Stats struct {
	Events  uint64
	Sends   uint64
	Parks   uint64
	Wakes   uint64
	MaxHeap int
}

// item is one pending dispatch: resume rank at virtual time t. seq is
// the tertiary tie-break (see the package comment).
type item struct {
	t    vclock.Time //mheta:units seconds
	rank int32
	seq  uint64
}

// less is the heap order: earliest time first, then lowest rank, then
// insertion sequence.
func (a item) less(b item) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}

// queue is the FIFO of undelivered messages for one (src,dst) pair.
// head avoids O(n) slides on the common in-order pop.
type queue struct {
	msgs []Msg
	head int
}

func (q *queue) push(m Msg) { q.msgs = append(q.msgs, m) }

func (q *queue) len() int { return len(q.msgs) - q.head }

// pop removes and returns the first message matching tag (any message
// when tag == AnyTag), preserving FIFO order among the rest.
func (q *queue) pop(tag int) (Msg, bool) {
	for i := q.head; i < len(q.msgs); i++ {
		if tag != AnyTag && q.msgs[i].Tag != tag {
			continue
		}
		m := q.msgs[i]
		if i == q.head {
			q.msgs[q.head] = Msg{}
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
			}
		} else {
			copy(q.msgs[i:], q.msgs[i+1:])
			q.msgs[len(q.msgs)-1] = Msg{}
			q.msgs = q.msgs[:len(q.msgs)-1]
		}
		return m, true
	}
	return Msg{}, false
}

// park records why a rank is blocked: it wants a message from src with
// the given tag, and will resume at time t (its clock when it parked)
// once one is delivered.
type park struct {
	active bool
	src    int32
	tag    int
	t      vclock.Time //mheta:units seconds
}

// Scheduler drives n ranks from a single event heap. It is not safe for
// concurrent use: exactly one driver goroutine owns it, which is the
// point — cross-rank coupling happens through message timestamps, not
// the host scheduler.
type Scheduler struct {
	n      int
	heap   []item
	seq    uint64
	queues map[uint64]*queue // lazily created per (src,dst) pair
	parked []park
	inHeap []bool
	// last[r] is rank r's most recent dispatch (or park) time; virtual
	// time travel — re-readying a rank earlier than it already ran — is
	// a driver bug and panics.
	last  []vclock.Time //mheta:units seconds
	stats Stats
}

// New returns a scheduler for n ranks with an empty event heap.
func New(n int) *Scheduler {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid rank count %d", n))
	}
	return &Scheduler{
		n:      n,
		queues: make(map[uint64]*queue),
		parked: make([]park, n),
		inHeap: make([]bool, n),
		last:   make([]vclock.Time, n),
	}
}

// Size returns the number of ranks.
func (s *Scheduler) Size() int { return s.n }

func pairKey(src, dst int) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

// Ready schedules rank r to be dispatched at virtual time t.
//
//mheta:units seconds t
func (s *Scheduler) Ready(r int, t vclock.Time) {
	if r < 0 || r >= s.n {
		panic(fmt.Sprintf("sched: Ready for rank %d of %d", r, s.n))
	}
	if s.inHeap[r] {
		panic(fmt.Sprintf("sched: rank %d readied twice", r))
	}
	if s.parked[r].active {
		panic(fmt.Sprintf("sched: rank %d readied while parked", r))
	}
	if t < s.last[r] {
		panic(fmt.Sprintf("sched: virtual time travel: rank %d readied at %v before %v", r, t, s.last[r]))
	}
	s.inHeap[r] = true
	s.push(item{t: t, rank: int32(r), seq: s.seq})
	s.seq++
	if len(s.heap) > s.stats.MaxHeap {
		s.stats.MaxHeap = len(s.heap)
	}
}

// Next pops the earliest pending dispatch. ok is false when the heap is
// empty — the run is complete, or deadlocked if ranks remain parked.
func (s *Scheduler) Next() (rank int, ok bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	it := s.pop()
	r := int(it.rank)
	s.inHeap[r] = false
	s.last[r] = it.t
	s.stats.Events++
	return r, true
}

// Send delivers m on the src→dst link, waking dst if it is parked on a
// matching (src, tag).
func (s *Scheduler) Send(src, dst int, m Msg) {
	if dst < 0 || dst >= s.n {
		panic(fmt.Sprintf("sched: Send to rank %d of %d", dst, s.n))
	}
	key := pairKey(src, dst)
	q := s.queues[key]
	if q == nil {
		q = &queue{}
		s.queues[key] = q
	}
	q.push(m)
	s.stats.Sends++
	if p := &s.parked[dst]; p.active && int(p.src) == src && (p.tag == AnyTag || p.tag == m.Tag) {
		p.active = false
		s.stats.Wakes++
		s.Ready(dst, p.t)
	}
}

// TryRecv removes and returns the first undelivered message matching
// tag on the src→dst link (FIFO among matches, exactly like the
// goroutine core's mailbox.take). It does not park; a driver that gets
// ok == false parks the receiver explicitly.
func (s *Scheduler) TryRecv(src, dst, tag int) (Msg, bool) {
	q := s.queues[pairKey(src, dst)]
	if q == nil {
		return Msg{}, false
	}
	return q.pop(tag)
}

// Park blocks rank r until a message from src with the given tag is
// delivered; r resumes at time t (its clock when it parked — parking
// itself consumes no virtual time).
//
//mheta:units seconds t
func (s *Scheduler) Park(r, src, tag int, t vclock.Time) {
	if s.inHeap[r] {
		panic(fmt.Sprintf("sched: rank %d parked while ready", r))
	}
	if s.parked[r].active {
		panic(fmt.Sprintf("sched: rank %d parked twice", r))
	}
	if t < s.last[r] {
		panic(fmt.Sprintf("sched: virtual time travel: rank %d parked at %v before %v", r, t, s.last[r]))
	}
	s.parked[r] = park{active: true, src: int32(src), tag: tag, t: t}
	s.last[r] = t
	s.stats.Parks++
}

// ParkedRanks returns the ranks currently blocked in a Recv, ascending —
// the deadlock report when Next runs dry with ranks unfinished.
func (s *Scheduler) ParkedRanks() []int {
	var out []int
	for r := range s.parked {
		if s.parked[r].active {
			out = append(out, r)
		}
	}
	return out
}

// PendingMessages returns the number of undelivered messages across all
// links (diagnostics; a clean run ends with zero).
func (s *Scheduler) PendingMessages() int {
	total := 0
	for _, q := range s.queues {
		total += q.len()
	}
	return total
}

// Stats returns the activity counters so far.
func (s *Scheduler) Stats() Stats { return s.stats }

// push and pop implement a classic binary min-heap over items; hand
// rolled (rather than container/heap) to avoid interface boxing on the
// hottest path of the event engine.
func (s *Scheduler) push(it item) {
	s.heap = append(s.heap, it)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heap[i].less(s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Scheduler) pop() item {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && s.heap[l].less(s.heap[min]) {
			min = l
		}
		if r < last && s.heap[r].less(s.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
	return top
}

// DumpState renders the scheduler's blocking picture for deadlock
// errors: which ranks are parked on which (src, tag), and how many
// messages sit undelivered, with deterministic ordering.
func (s *Scheduler) DumpState() string {
	parked := s.ParkedRanks()
	out := fmt.Sprintf("%d parked", len(parked))
	limit := parked
	if len(limit) > 8 {
		limit = limit[:8]
	}
	for _, r := range limit {
		p := s.parked[r]
		out += fmt.Sprintf(" [rank %d ← src %d tag %d @%v]", r, p.src, p.tag, p.t)
	}
	if len(parked) > 8 {
		out += " …"
	}
	var keys []uint64
	for k, q := range s.queues {
		if q.len() > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out += fmt.Sprintf("; %d undelivered", s.PendingMessages())
	for i, k := range keys {
		if i == 8 {
			out += " …"
			break
		}
		out += fmt.Sprintf(" [%d→%d: %d]", k>>32, uint32(k), s.queues[k].len())
	}
	return out
}
