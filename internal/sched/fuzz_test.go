package sched

import (
	"testing"

	"mheta/internal/vclock"
)

// refModel is a deliberately naive reference implementation of the
// scheduler's observable semantics: a linear-scan priority list and
// per-link message slices. The fuzzer drives both with the same legal
// operation stream and fails on any divergence — FIFO-per-(src,dst,tag)
// matching, dispatch order, and wake behaviour.
type refModel struct {
	n      int
	events []refEvent
	seq    uint64
	queues map[uint64][]Msg
	parked []park
	last   []vclock.Time
}

type refEvent struct {
	t    vclock.Time
	rank int32
	seq  uint64
}

func newRefModel(n int) *refModel {
	return &refModel{
		n:      n,
		queues: make(map[uint64][]Msg),
		parked: make([]park, n),
		last:   make([]vclock.Time, n),
	}
}

func (m *refModel) ready(r int, t vclock.Time) {
	m.events = append(m.events, refEvent{t: t, rank: int32(r), seq: m.seq})
	m.seq++
}

func (m *refModel) next() (int, bool) {
	if len(m.events) == 0 {
		return 0, false
	}
	best := 0
	for i := 1; i < len(m.events); i++ {
		a, b := m.events[i], m.events[best]
		if a.t < b.t || (a.t == b.t && (a.rank < b.rank || (a.rank == b.rank && a.seq < b.seq))) {
			best = i
		}
	}
	r := int(m.events[best].rank)
	m.last[r] = m.events[best].t
	m.events = append(m.events[:best], m.events[best+1:]...)
	return r, true
}

func (m *refModel) send(src, dst int, msg Msg) (woke bool) {
	key := pairKey(src, dst)
	m.queues[key] = append(m.queues[key], msg)
	if p := &m.parked[dst]; p.active && int(p.src) == src && (p.tag == AnyTag || p.tag == msg.Tag) {
		p.active = false
		m.ready(dst, p.t)
		return true
	}
	return false
}

func (m *refModel) tryRecv(src, dst, tag int) (Msg, bool) {
	key := pairKey(src, dst)
	q := m.queues[key]
	for i, msg := range q {
		if tag == AnyTag || msg.Tag == tag {
			m.queues[key] = append(q[:i:i], q[i+1:]...)
			return msg, true
		}
	}
	return Msg{}, false
}

func (m *refModel) park(r, src, tag int, t vclock.Time) {
	m.parked[r] = park{active: true, src: int32(src), tag: tag, t: t}
	m.last[r] = t
}

// rankState tracks what the driver knows about each rank so the fuzzer
// only issues protocol-legal operations (the scheduler panics on
// illegal ones by design; those paths are unit-tested directly).
type rankState int

const (
	stIdle rankState = iota // dispatched or never scheduled
	stQueued
	stParked
)

// FuzzScheduler drives Scheduler and refModel with the same operation
// stream decoded from the fuzz input and checks observable equivalence.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{5, 10, 20, 30, 40, 1, 1, 1, 2, 2, 2, 3, 3, 3, 0, 0})
	f.Add([]byte{8, 255, 254, 253, 0, 1, 127, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 2 + int(data[0])%6
		s := New(n)
		m := newRefModel(n)
		states := make([]rankState, n)
		clocks := make([]vclock.Time, n)
		i := 1
		nextByte := func() int {
			if i >= len(data) {
				return -1
			}
			b := int(data[i])
			i++
			return b
		}
		for {
			op := nextByte()
			if op < 0 {
				break
			}
			switch op % 4 {
			case 0: // Ready an idle rank at its (advanced) clock.
				r := (op / 4) % n
				if states[r] != stIdle {
					continue
				}
				d := nextByte()
				if d < 0 {
					d = 0
				}
				clocks[r] += vclock.Time(d) / 16
				s.Ready(r, clocks[r])
				m.ready(r, clocks[r])
				states[r] = stQueued
			case 1: // Dispatch the earliest event.
				got, gok := s.Next()
				want, wok := m.next()
				if gok != wok || (gok && got != want) {
					t.Fatalf("Next: got (%d,%v), model (%d,%v)", got, gok, want, wok)
				}
				if gok {
					states[got] = stIdle
				}
			case 2: // Send src→dst with a small tag space.
				b := nextByte()
				if b < 0 {
					break
				}
				src := (op / 4) % n
				dst := b % n
				tag := (b / 8) % 3
				msg := Msg{Tag: tag, Arrival: clocks[src]}
				wokeModel := m.send(src, dst, msg)
				parkedBefore := states[dst] == stParked
				s.Send(src, dst, msg)
				if wokeModel {
					if !parkedBefore {
						t.Fatalf("model woke rank %d the driver thought was not parked", dst)
					}
					states[dst] = stQueued
				}
			case 3: // TryRecv on an idle rank.
				b := nextByte()
				if b < 0 {
					break
				}
				dst := (op / 4) % n
				if states[dst] != stIdle {
					continue
				}
				src := b % n
				tag := (b / 8) % 3
				if b%64 == 0 {
					tag = AnyTag
				}
				gotMsg, gok := s.TryRecv(src, dst, tag)
				wantMsg, wok := m.tryRecv(src, dst, tag)
				if gok != wok || gotMsg.Tag != wantMsg.Tag || gotMsg.Arrival != wantMsg.Arrival {
					t.Fatalf("TryRecv(%d,%d,%d): got (%v,%v), model (%v,%v)", src, dst, tag, gotMsg, gok, wantMsg, wok)
				}
				if !gok {
					// Miss: park, exactly as the event engine does.
					s.Park(dst, src, tag, clocks[dst])
					m.park(dst, src, tag, clocks[dst])
					states[dst] = stParked
				}
			}
		}
		// Drain: remaining dispatch order must match the model exactly.
		for {
			got, gok := s.Next()
			want, wok := m.next()
			if gok != wok || (gok && got != want) {
				t.Fatalf("drain: got (%d,%v), model (%d,%v)", got, gok, want, wok)
			}
			if !gok {
				break
			}
		}
		if s.PendingMessages() < 0 {
			t.Fatal("negative pending count")
		}
	})
}
