package sched

import (
	"testing"
)

func TestDispatchOrder(t *testing.T) {
	s := New(4)
	s.Ready(2, 3.0)
	s.Ready(0, 1.0)
	s.Ready(3, 2.0)
	s.Ready(1, 2.0)
	// Ranks 3 and 1 are both at t=2.0: the rank tie-break puts 1 first.
	want := []int{0, 1, 3, 2}
	for i, w := range want {
		r, ok := s.Next()
		if !ok {
			t.Fatalf("heap dry at %d", i)
		}
		if r != w {
			t.Fatalf("dispatch %d = rank %d, want %d", i, r, w)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("heap should be empty")
	}
}

// TestTieBreakInsertionIndependence: equal-time events dispatch by rank
// regardless of the order they were pushed — the determinism half of the
// heap key (virtual time, rank, seq).
func TestTieBreakInsertionIndependence(t *testing.T) {
	n := 7
	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
		{1, 6, 0, 5, 3, 4, 2},
	}
	var first []int
	for pi, perm := range perms {
		s := New(n)
		for _, r := range perm {
			s.Ready(r, 5.0)
		}
		var got []int
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			got = append(got, r)
		}
		if pi == 0 {
			first = got
		}
		for i := range got {
			if got[i] != i {
				t.Fatalf("perm %v: dispatch order %v, want ascending ranks", perm, got)
			}
			if got[i] != first[i] {
				t.Fatalf("perm %v: order differs from first permutation", perm)
			}
		}
	}
}

func TestFIFOPerTag(t *testing.T) {
	s := New(2)
	s.Send(0, 1, Msg{Tag: 7, Data: []byte("a"), Arrival: 1})
	s.Send(0, 1, Msg{Tag: 9, Data: []byte("b"), Arrival: 2})
	s.Send(0, 1, Msg{Tag: 7, Data: []byte("c"), Arrival: 3})

	// Tag 7 pops FIFO among tag-7 messages, skipping tag 9.
	m, ok := s.TryRecv(0, 1, 7)
	if !ok || string(m.Data) != "a" {
		t.Fatalf("first tag-7 = %q, want a", m.Data)
	}
	// AnyTag pops the overall head (tag 9 now).
	m, ok = s.TryRecv(0, 1, AnyTag)
	if !ok || string(m.Data) != "b" {
		t.Fatalf("AnyTag = %q, want b", m.Data)
	}
	m, ok = s.TryRecv(0, 1, 7)
	if !ok || string(m.Data) != "c" {
		t.Fatalf("second tag-7 = %q, want c", m.Data)
	}
	if _, ok := s.TryRecv(0, 1, 7); ok {
		t.Fatal("queue should be empty")
	}
	// The reverse link is independent.
	if _, ok := s.TryRecv(1, 0, AnyTag); ok {
		t.Fatal("reverse link should be empty")
	}
}

func TestParkWake(t *testing.T) {
	s := New(3)
	// Rank 1 parks waiting for (src=0, tag=5) at its clock time 2.5.
	s.Park(1, 0, 5, 2.5)
	if got := s.ParkedRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("parked = %v, want [1]", got)
	}
	// A non-matching tag does not wake it.
	s.Send(0, 1, Msg{Tag: 6, Arrival: 3})
	if _, ok := s.Next(); ok {
		t.Fatal("non-matching tag must not wake")
	}
	// A matching send wakes rank 1 at its park time.
	s.Send(0, 1, Msg{Tag: 5, Arrival: 4})
	r, ok := s.Next()
	if !ok || r != 1 {
		t.Fatalf("woke rank %d ok=%v, want rank 1", r, ok)
	}
	if len(s.ParkedRanks()) != 0 {
		t.Fatal("rank should be unparked")
	}
	// Both messages are still in the queue, FIFO.
	m, ok := s.TryRecv(0, 1, 5)
	if !ok || m.Tag != 5 {
		t.Fatalf("tag-5 message missing: %v %v", m, ok)
	}
	m, ok = s.TryRecv(0, 1, AnyTag)
	if !ok || m.Tag != 6 {
		t.Fatalf("tag-6 message missing: %v %v", m, ok)
	}
}

func TestParkAnyTagWake(t *testing.T) {
	s := New(2)
	s.Park(1, 0, AnyTag, 0)
	s.Send(0, 1, Msg{Tag: 42})
	if r, ok := s.Next(); !ok || r != 1 {
		t.Fatal("AnyTag park must wake on any tag")
	}
}

// TestNoTimeTravel: re-readying or parking a rank earlier than its last
// dispatch is a driver bug and must panic.
func TestNoTimeTravel(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	s := New(2)
	s.Ready(0, 5.0)
	if r, ok := s.Next(); !ok || r != 0 {
		t.Fatal("setup dispatch failed")
	}
	mustPanic("ready-into-past", func() { s.Ready(0, 4.0) })

	s2 := New(2)
	s2.Ready(0, 5.0)
	s2.Next()
	mustPanic("park-into-past", func() { s2.Park(0, 1, 0, 4.0) })

	s3 := New(2)
	s3.Ready(0, 1.0)
	mustPanic("double-ready", func() { s3.Ready(0, 2.0) })

	s4 := New(2)
	s4.Park(0, 1, 0, 1.0)
	mustPanic("park-then-ready", func() { s4.Ready(0, 2.0) })
	mustPanic("double-park", func() { s4.Park(0, 1, 0, 2.0) })
}

// TestWakeResumesAtParkTime: a woken receiver re-enters the heap at its
// own (earlier) clock time, ahead of later entries — global dispatch
// times are legitimately non-monotone, while each rank's own dispatch
// times never regress (enforced by the scheduler itself, see
// TestNoTimeTravel).
func TestWakeResumesAtParkTime(t *testing.T) {
	s := New(3)
	// Rank 1 parked at t=1.0; rank 2 pending at t=10.0.
	s.Park(1, 0, 7, 1.0)
	s.Ready(2, 10.0)
	// Rank 0 (the sender, "running now") delivers at its virtual time 5.0;
	// the wake must dispatch rank 1 at 1.0, before rank 2's 10.0.
	s.Send(0, 1, Msg{Tag: 7, Arrival: 5.0})
	r, ok := s.Next()
	if !ok || r != 1 {
		t.Fatalf("first dispatch = rank %d, want woken rank 1", r)
	}
	r, ok = s.Next()
	if !ok || r != 2 {
		t.Fatalf("second dispatch = rank %d, want rank 2", r)
	}
}

func TestDeadlockReport(t *testing.T) {
	s := New(3)
	s.Park(0, 1, 3, 1.5)
	s.Park(2, 0, 4, 2.5)
	s.Send(1, 0, Msg{Tag: 99, Arrival: 1}) // wrong tag: no wake
	got := s.ParkedRanks()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("parked = %v, want [0 2]", got)
	}
	if s.PendingMessages() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingMessages())
	}
	dump := s.DumpState()
	if dump == "" {
		t.Fatal("empty dump")
	}
}

func TestStats(t *testing.T) {
	s := New(2)
	s.Ready(0, 0)
	s.Next()
	s.Park(1, 0, 1, 0)
	s.Send(0, 1, Msg{Tag: 1})
	s.Next()
	st := s.Stats()
	if st.Events != 2 || st.Sends != 1 || st.Parks != 1 || st.Wakes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxHeap < 1 {
		t.Fatalf("MaxHeap = %d", st.MaxHeap)
	}
}

func TestInvalidNew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) must panic")
		}
	}()
	New(0)
}
