package trace_test

import (
	"strings"
	"testing"

	"mheta/internal/apps"
	"mheta/internal/cluster"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/mpi"
	"mheta/internal/trace"
	"mheta/internal/vclock"
)

func TestSpanBasics(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 2})
	tr.Add(trace.Span{Rank: 0, Kind: trace.SpanBlocked, Start: 1, End: 1.5})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	// Sorted by rank then time.
	if spans[0].Rank != 0 || spans[1].Rank != 1 {
		t.Fatal("sort order wrong")
	}
	if spans[1].Duration() != 2 {
		t.Fatalf("duration %v", spans[1].Duration())
	}
}

func TestByRankAndFilter(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Span{Rank: 0, Kind: trace.SpanIO, Label: "B", Start: 0, End: 1})
	tr.Add(trace.Span{Rank: 0, Kind: trace.SpanBlocked, Start: 1, End: 3})
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanIO, Label: "B", Start: 0, End: 1})
	if len(tr.ByRank(0)) != 2 || len(tr.ByRank(1)) != 1 {
		t.Fatal("ByRank wrong")
	}
	if len(tr.Filter(trace.SpanIO)) != 2 {
		t.Fatal("Filter wrong")
	}
	if tr.BlockedTime(0) != 2 || tr.BlockedTime(1) != 0 {
		t.Fatal("BlockedTime wrong")
	}
}

func TestKindString(t *testing.T) {
	if trace.SpanSection.String() != "section" || trace.SpanBlocked.String() != "blocked" {
		t.Fatal("kind strings")
	}
}

func TestGanttRendersRows(t *testing.T) {
	tr := trace.New()
	tr.Add(trace.Span{Rank: 0, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 1})
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanSection, Label: "S1", Start: 0.5, End: 1})
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanBlocked, Start: 0, End: 0.5})
	out := tr.Gantt(2, 20)
	if !strings.Contains(out, "rank  0") || !strings.Contains(out, "rank  1") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("missing section letters:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Fatalf("missing blocked marks:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if !strings.Contains(trace.New().Gantt(2, 10), "empty") {
		t.Fatal("empty trace must say so")
	}
}

func TestExecProducesTrace(t *testing.T) {
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 512, 64, 2
	app := apps.NewJacobi(cfg)
	spec := cluster.IO(8) // slow disks → real I/O and blocked spans
	tr := trace.New()
	w := mpi.NewWorld(spec, 1, 0.02)
	if _, err := exec.Run(w, app, dist.Block(cfg.Rows, 8), exec.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	// Sections: 2 per iteration × 2 iterations × 8 ranks.
	if got := len(tr.Filter(trace.SpanSection)); got != 2*2*8 {
		t.Fatalf("%d section spans, want 32", got)
	}
	// The small-memory nodes must show I/O spans.
	if len(tr.Filter(trace.SpanIO)) == 0 {
		t.Fatal("no I/O spans recorded")
	}
	// Someone must have blocked on the reduction or exchange.
	totalBlocked := vclock.Duration(0)
	for p := 0; p < 8; p++ {
		totalBlocked += tr.BlockedTime(p)
	}
	if totalBlocked <= 0 {
		t.Fatal("no blocked time recorded")
	}
	// The Gantt must render all 8 ranks.
	out := tr.Gantt(8, 60)
	if strings.Count(out, "rank") != 8 {
		t.Fatalf("gantt:\n%s", out)
	}
}

func TestTraceSectionSpansNested(t *testing.T) {
	// Per rank, section spans must be non-overlapping and ordered.
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 256, 32, 2
	app := apps.NewJacobi(cfg)
	tr := trace.New()
	w := mpi.NewWorld(cluster.DC(8), 1, 0)
	if _, err := exec.Run(w, app, dist.Block(cfg.Rows, 8), exec.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		var last vclock.Time
		for _, s := range tr.ByRank(p) {
			if s.Kind != trace.SpanSection {
				continue
			}
			if s.Start < last {
				t.Fatalf("rank %d: section spans overlap", p)
			}
			if s.End < s.Start {
				t.Fatalf("rank %d: negative span", p)
			}
			last = s.End
		}
	}
}
