// Package trace records per-rank virtual-time timelines of emulated runs
// — which parallel section, tile and stage each rank was in, and when it
// blocked — and renders them as text Gantt charts.
//
// Traces serve two purposes: debugging the executor (does the pipeline
// actually pipeline? where does the IO-bound node stall?), and validating
// MHETA structurally — the model's per-section finish times
// (core.Prediction.SectionTimes) can be laid over a trace to see *where*
// a prediction diverges, not just by how much.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mheta/internal/mpi"
	"mheta/internal/vclock"
)

// Kind classifies a span.
type Kind int

const (
	// SpanSection covers one parallel section of one iteration.
	SpanSection Kind = iota
	// SpanStage covers one stage within a tile.
	SpanStage
	// SpanBlocked covers time a rank spent waiting for a message or a
	// prefetch.
	SpanBlocked
	// SpanIO covers synchronous file reads/writes.
	SpanIO
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SpanSection:
		return "section"
	case SpanStage:
		return "stage"
	case SpanBlocked:
		return "blocked"
	case SpanIO:
		return "io"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Span is one interval of a rank's timeline.
type Span struct {
	Rank       int
	Kind       Kind
	Label      string // e.g. "S0", "S0/T2/st1", variable name for IO
	Start, End vclock.Time
	// Peer, when non-zero, is 1 + the rank this span waited on (blocked
	// receives record their sender). The +1 bias keeps the zero value —
	// what every existing call site constructs — meaning "no peer".
	Peer int
}

// PeerRank returns the peer rank, or -1 when the span has none.
func (s Span) PeerRank() int { return s.Peer - 1 }

// Duration returns the span's length.
func (s Span) Duration() vclock.Duration { return vclock.Duration(s.End - s.Start) }

// Trace accumulates spans from all ranks of a run. Safe for concurrent
// append (ranks run as goroutines).
type Trace struct {
	mu    sync.Mutex
	spans []Span //mheta:guardedby mu
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Add appends a span.
func (t *Trace) Add(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns all spans sorted by (rank, start time).
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Span(nil), t.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// ByRank returns rank p's spans in time order.
func (t *Trace) ByRank(p int) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Rank == p {
			out = append(out, s)
		}
	}
	return out
}

// Filter returns the spans of one kind, in (rank, time) order.
func (t *Trace) Filter(k Kind) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// BlockedTime sums rank p's blocked spans — the Twait MHETA's Equations
// 3 and 4 model.
func (t *Trace) BlockedTime(p int) vclock.Duration {
	var d vclock.Duration
	for _, s := range t.ByRank(p) {
		if s.Kind == SpanBlocked {
			d += s.Duration()
		}
	}
	return d
}

// Collector implements mpi.Profiler, recording blocked and I/O spans
// automatically; section/stage spans are added by the harness (exec wires
// this up when Options.Trace is set).
type Collector struct {
	T    *Trace
	Rank int
}

// Pre implements mpi.Profiler.
func (c *Collector) Pre(ci *mpi.CallInfo) {}

// Post implements mpi.Profiler.
func (c *Collector) Post(ci *mpi.CallInfo) {
	switch ci.Kind {
	case mpi.CallRecv, mpi.CallPrefetchWait:
		if ci.Wait > 0 {
			peer := 0
			if ci.Kind == mpi.CallRecv {
				peer = ci.Peer + 1 // sender rank, biased so 0 stays "none"
			}
			c.T.Add(Span{
				Rank:  c.Rank,
				Kind:  SpanBlocked,
				Label: ci.Kind.String(),
				Start: ci.End - vclock.Time(ci.Wait),
				End:   ci.End,
				Peer:  peer,
			})
		}
	case mpi.CallFileRead, mpi.CallFileWrite:
		c.T.Add(Span{
			Rank:  c.Rank,
			Kind:  SpanIO,
			Label: ci.Var,
			Start: ci.Start,
			End:   ci.End,
		})
	}
}

// Gantt renders the trace as a text chart: one row per rank, the given
// width in character cells, section spans as letters, blocked time as
// '.', I/O as '#' overlaid when it dominates a cell.
//
// Degenerate inputs render a placeholder line instead of panicking: an
// empty trace, a non-positive rank count or chart width, or a trace whose
// spans all sit at virtual time zero (nothing to scale against).
func (t *Trace) Gantt(ranks, width int) string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	if ranks <= 0 {
		return "(no ranks)\n"
	}
	if width <= 0 {
		return "(zero-width chart)\n"
	}
	var tmax vclock.Time
	for _, s := range spans {
		if s.End > tmax {
			tmax = s.End
		}
	}
	if tmax <= 0 {
		return "(zero-length trace)\n"
	}
	cell := func(ts vclock.Time) int {
		c := int(float64(ts) / float64(tmax) * float64(width))
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make([][]byte, ranks)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	cellSpan := vclock.Time(float64(tmax) / float64(width))
	paint := func(s Span, ch byte, force bool) {
		if s.Rank < 0 || s.Rank >= ranks {
			return
		}
		for c := cell(s.Start); c <= cell(s.End-1e-12) && c < width; c++ {
			if force || rows[s.Rank][c] == ' ' {
				rows[s.Rank][c] = ch
			}
		}
	}
	// paintCovered marks only cells the span fully covers, so short
	// blocked slivers do not hide the section letters beneath them.
	paintCovered := func(s Span, ch byte) {
		if s.Rank < 0 || s.Rank >= ranks {
			return
		}
		for c := 0; c < width; c++ {
			cs := vclock.Time(c) * cellSpan
			ce := cs + cellSpan
			if s.Start <= cs && s.End >= ce {
				rows[s.Rank][c] = ch
			}
		}
	}
	// Sections first (letters A, B, C... by section index parsed from the
	// label), then IO and blocked overlays.
	for _, s := range spans {
		if s.Kind != SpanSection {
			continue
		}
		ch := byte('A')
		var si int
		if _, err := fmt.Sscanf(s.Label, "S%d", &si); err == nil {
			ch = byte('A' + si%26)
		}
		paint(s, ch, false)
	}
	for _, s := range spans {
		if s.Kind == SpanIO {
			paint(s, '#', true)
		}
	}
	for _, s := range spans {
		if s.Kind == SpanBlocked {
			paintCovered(s, '.')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time 0 .. %.6fs (%d cells; letters=sections, #=I/O, .=blocked)\n", float64(tmax), width)
	for p := 0; p < ranks; p++ {
		fmt.Fprintf(&b, "rank %2d |%s|\n", p, rows[p])
	}
	return b.String()
}
