package trace_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mheta/internal/apps"
	"mheta/internal/cluster"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/mpi"
	"mheta/internal/trace"
)

// goldenTrace builds a small hand-made trace exercising every event kind
// the exporter emits: labeled and unlabeled spans, all four span kinds,
// and a blocked receive with a recorded peer (which adds a flow arrow).
func goldenTrace() *trace.Trace {
	tr := trace.New()
	tr.Add(trace.Span{Rank: 0, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 1})
	tr.Add(trace.Span{Rank: 0, Kind: trace.SpanIO, Label: "B", Start: 0.25, End: 0.5})
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 0.5})
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanStage, Label: "S0/T0/st1", Start: 0.1, End: 0.3})
	// Blocked on a message from rank 0 (Peer is 1+sender).
	tr.Add(trace.Span{Rank: 1, Kind: trace.SpanBlocked, Label: "Recv", Start: 0.5, End: 1, Peer: 1})
	// Unlabeled span: the exporter names it after its kind.
	tr.Add(trace.Span{Rank: 2, Kind: trace.SpanBlocked, Start: 0, End: 0.125})
	return tr
}

// TestWriteChromeGolden pins the exporter's exact output. Regenerate
// with -update when the format changes intentionally.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// And it must be reproducible byte-for-byte.
	var again bytes.Buffer
	if err := goldenTrace().WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome export not deterministic across calls")
	}
}

// chromeEvent mirrors the exporter's JSON for decoding in tests.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	ID   int     `json:"id"`
	BP   string  `json:"bp"`
}

// TestWriteChromePerfettoSanity runs a real emulation and checks the
// export satisfies what Perfetto's JSON importer requires: a valid JSON
// array, every event carrying a phase, and per-thread timestamps
// monotonically non-decreasing.
func TestWriteChromePerfettoSanity(t *testing.T) {
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 512, 64, 2
	app := apps.NewJacobi(cfg)
	tr := trace.New()
	w := mpi.NewWorld(cluster.IO(8), 1, 0.02)
	if _, err := exec.Run(w, app, dist.Block(cfg.Rows, 8), exec.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a valid JSON array: %v", err)
	}
	if len(events) < 8 {
		t.Fatalf("only %d events from an 8-rank run", len(events))
	}
	lastTS := map[int]float64{}
	kinds := map[string]int{}
	flows := map[int][]string{}
	for i, ev := range events {
		if ev.Ph == "" {
			t.Fatalf("event %d has no phase: %+v", i, ev)
		}
		if ev.TS < 0 || (ev.Ph == "X" && ev.Dur < 0) {
			t.Fatalf("event %d has negative time: %+v", i, ev)
		}
		if prev, ok := lastTS[ev.TID]; ok && ev.TS < prev {
			t.Fatalf("tid %d timestamps regress at event %d: %v -> %v", ev.TID, i, prev, ev.TS)
		}
		lastTS[ev.TID] = ev.TS
		kinds[ev.Cat]++
		if ev.Ph == "s" || ev.Ph == "f" {
			flows[ev.ID] = append(flows[ev.ID], ev.Ph)
		}
	}
	for _, want := range []string{"section", "io", "blocked"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in an IO-cluster run", want)
		}
	}
	// Every flow id must pair one start with one finish.
	for id, phs := range flows {
		if len(phs) != 2 {
			t.Errorf("flow %d has %d endpoints", id, len(phs))
		}
	}
}

// TestGanttDegenerateInputs is the table test for the edge cases that
// used to panic or mislead: negative/zero rank counts (make panicked),
// non-positive widths (reported "empty trace" for a non-empty one), and
// all-zero-duration spans (divide-by-zero scaling).
func TestGanttDegenerateInputs(t *testing.T) {
	one := trace.New()
	one.Add(trace.Span{Rank: 0, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 1})
	zeroDur := trace.New()
	zeroDur.Add(trace.Span{Rank: 0, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 0})
	cases := []struct {
		name         string
		tr           *trace.Trace
		ranks, width int
		want         string
	}{
		{"empty", trace.New(), 4, 40, "(empty trace)"},
		{"empty beats other degeneracies", trace.New(), -1, 0, "(empty trace)"},
		{"negative ranks", one, -3, 40, "(no ranks)"},
		{"zero ranks", one, 0, 40, "(no ranks)"},
		{"zero width", one, 4, 0, "(zero-width chart)"},
		{"negative width", one, 4, -10, "(zero-width chart)"},
		{"all spans zero-length", zeroDur, 1, 40, "(zero-length trace)"},
		{"width one still renders", one, 1, 1, "rank  0"},
	}
	for _, tc := range cases {
		out := tc.tr.Gantt(tc.ranks, tc.width)
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s: Gantt(%d, %d) = %q, want it to contain %q",
				tc.name, tc.ranks, tc.width, out, tc.want)
		}
	}
	// A zero-duration span inside a non-degenerate trace must render too.
	mixed := trace.New()
	mixed.Add(trace.Span{Rank: 0, Kind: trace.SpanSection, Label: "S0", Start: 0, End: 2})
	mixed.Add(trace.Span{Rank: 1, Kind: trace.SpanSection, Label: "S1", Start: 1, End: 1})
	if out := mixed.Gantt(2, 30); !strings.Contains(out, "rank  1") {
		t.Errorf("zero-duration span broke rendering:\n%s", out)
	}
}

// TestStatsAndSummaryTable covers the per-rank aggregation feeding the
// cmd end-of-run summaries.
func TestStatsAndSummaryTable(t *testing.T) {
	tr := goldenTrace()
	stats := tr.Stats(2) // rank 2 deliberately outside the window
	if len(stats) != 2 {
		t.Fatalf("%d stats", len(stats))
	}
	if stats[0].Section != 1 || stats[0].IO != 0.25 || stats[0].Blocked != 0 {
		t.Fatalf("rank 0 stats %+v", stats[0])
	}
	if stats[1].Section != 0.5 || stats[1].Blocked != 0.5 || stats[1].Spans != 3 {
		t.Fatalf("rank 1 stats %+v", stats[1])
	}
	table := tr.SummaryTable(2)
	if !strings.Contains(table, "rank") || strings.Count(table, "\n") != 3 {
		t.Fatalf("table:\n%s", table)
	}
}

// TestPeerRank pins the +1 bias round-trip.
func TestPeerRank(t *testing.T) {
	if (trace.Span{}).PeerRank() != -1 {
		t.Fatal("zero-value span must report no peer")
	}
	if (trace.Span{Peer: 1}).PeerRank() != 0 {
		t.Fatal("Peer 1 must mean rank 0")
	}
}
