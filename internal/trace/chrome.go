package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mheta/internal/vclock"
)

// chromeEvent is one entry of the Chrome trace-event JSON array
// (the "JSON Array Format" Perfetto and chrome://tracing both load).
// Field order here fixes the key order in the output; timestamps and
// durations are microseconds of virtual time.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  *float64    `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	ID   int         `json:"id,omitempty"`
	BP   string      `json:"bp,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries event metadata; a struct (not a map) so emission
// order is fixed.
type chromeArgs struct {
	Name string `json:"name,omitempty"`
	Peer *int   `json:"peer,omitempty"` // pointer so sender rank 0 still emits
}

// chromeUS converts virtual seconds to trace microseconds.
func chromeUS(t vclock.Time) float64 { return float64(t) * 1e6 }

// phaseOrder ranks event phases so metadata sorts before spans and a
// flow step at the same timestamp sorts after the span that emits it.
func phaseOrder(ph string) int {
	switch ph {
	case "M":
		return 0
	case "X":
		return 1
	case "s":
		return 2
	case "f":
		return 3
	default:
		return 4
	}
}

// WriteChrome writes the trace as Chrome trace-event JSON: one "X"
// (complete) event per span with cat = the span kind, thread-name
// metadata mapping tid→rank, and an "s"/"f" flow arrow from the sender's
// timeline into every blocked receive that recorded its peer — so
// Perfetto draws the message dependency the rank stalled on.
//
// Output is deterministic: events are emitted sorted by (tid, ts, phase,
// name), which also guarantees non-decreasing timestamps within every
// rank's timeline, and all JSON objects serialise with fixed key order.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans() // (rank, start)-sorted
	ranks := map[int]bool{}
	for _, s := range spans {
		ranks[s.Rank] = true
		if s.Peer > 0 {
			ranks[s.PeerRank()] = true
		}
	}

	events := make([]chromeEvent, 0, 2*len(spans)+len(ranks)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: &chromeArgs{Name: "mheta emulation"},
	})
	for r := range ranks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: r,
			Args: &chromeArgs{Name: fmt.Sprintf("rank %d", r)},
		})
	}

	flowID := 0
	for _, s := range spans {
		dur := chromeUS(s.End) - chromeUS(s.Start)
		ev := chromeEvent{
			Name: s.Label, Cat: s.Kind.String(), Ph: "X",
			TS: chromeUS(s.Start), Dur: &dur, PID: 0, TID: s.Rank,
		}
		if s.Label == "" {
			ev.Name = s.Kind.String()
		}
		if s.Peer > 0 {
			peer := s.PeerRank()
			ev.Args = &chromeArgs{Peer: &peer}
		}
		events = append(events, ev)
		if s.Kind == SpanBlocked && s.Peer > 0 {
			// Flow arrow: starts on the sender's timeline when the wait
			// begins, finishes on the blocked rank when the message lands.
			flowID++
			events = append(events,
				chromeEvent{Name: "msg", Cat: "blocked", Ph: "s",
					TS: chromeUS(s.Start), PID: 0, TID: s.PeerRank(), ID: flowID},
				chromeEvent{Name: "msg", Cat: "blocked", Ph: "f", BP: "e",
					TS: chromeUS(s.End), PID: 0, TID: s.Rank, ID: flowID},
			)
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if pa, pb := phaseOrder(a.Ph), phaseOrder(b.Ph); pa != pb {
			return pa < pb
		}
		return a.Name < b.Name
	})

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s%s", line, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// RankStat aggregates one rank's timeline for the end-of-run summary.
type RankStat struct {
	Rank    int
	Section vclock.Duration // time inside parallel sections
	Blocked vclock.Duration // time waiting on messages/prefetches
	IO      vclock.Duration // time in synchronous file traffic
	Spans   int
}

// Stats aggregates per-rank section/blocked/I/O time over ranks 0..n-1,
// in rank order.
func (t *Trace) Stats(n int) []RankStat {
	out := make([]RankStat, n)
	for i := range out {
		out[i].Rank = i
	}
	for _, s := range t.Spans() {
		if s.Rank < 0 || s.Rank >= n {
			continue
		}
		st := &out[s.Rank]
		st.Spans++
		switch s.Kind {
		case SpanSection:
			st.Section += s.Duration()
		case SpanBlocked:
			st.Blocked += s.Duration()
		case SpanIO:
			st.IO += s.Duration()
		}
	}
	return out
}

// SummaryTable renders Stats(n) as an aligned text table.
func (t *Trace) SummaryTable(n int) string {
	out := "rank   section    blocked         io  spans\n"
	for _, st := range t.Stats(n) {
		out += fmt.Sprintf("%4d %9.4f  %9.4f  %9.4f  %5d\n",
			st.Rank, float64(st.Section), float64(st.Blocked), float64(st.IO), st.Spans)
	}
	return out
}
