module mheta

go 1.22
