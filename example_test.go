package mheta_test

import (
	"fmt"

	"mheta"
)

// Example reproduces the paper's core workflow: instrument one iteration
// of an application on a heterogeneous cluster, then predict candidate
// data distributions without running them.
func Example() {
	spec := mheta.MustNamedCluster("HY1")
	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 96, 4 // demo scale
	app := mheta.Jacobi(cfg)

	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		panic(err)
	}
	blk := mheta.BlockDistribution(app, spec)
	pred := model.Predict(blk)
	fmt.Printf("Blk predicted > 0: %v\n", pred.Total > 0)
	fmt.Printf("per-node times: %d entries\n", len(pred.NodeTimes))
	// Output:
	// Blk predicted > 0: true
	// per-node times: 8 entries
}

// ExampleSearchGBS shows the model driving a distribution search — the
// role MHETA plays inside the paper's runtime system.
func ExampleSearchGBS() {
	spec := mheta.MustNamedCluster("HY2")
	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 96, 4
	app := mheta.Jacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		panic(err)
	}
	blk := model.Predict(mheta.BlockDistribution(app, spec)).Total
	res := mheta.SearchGBS(spec, app, model)
	fmt.Printf("improved on Blk: %v\n", res.Time < blk)
	fmt.Printf("distribution is valid: %v\n", res.Best.Validate(cfg.Rows) == nil)
	// Output:
	// improved on Blk: true
	// distribution is valid: true
}

// ExampleRunActual verifies a prediction against an actual emulated run.
func ExampleRunActual() {
	spec := mheta.MustNamedCluster("DC")
	cfg := mheta.RNADefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 512, 128, 2
	app := mheta.RNA(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		panic(err)
	}
	d := mheta.BlockDistribution(app, spec)
	actual, err := mheta.RunActual(spec, app, d, 7)
	if err != nil {
		panic(err)
	}
	pred := model.Predict(d).Total
	ratio := pred / actual
	fmt.Printf("prediction within 10%% of actual: %v\n", ratio > 0.9 && ratio < 1.1)
	// Output:
	// prediction within 10% of actual: true
}
