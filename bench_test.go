// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the headline measurements and the DESIGN.md
// ablations. Benchmarks run the experiments at test scale so the whole
// suite finishes in minutes; use cmd/mheta-experiments -scale quick (or
// paper) for the full-size regeneration recorded in EXPERIMENTS.md.
//
// Each benchmark reports the figures' key quantities as custom metrics:
// avg%/max% prediction difference for the accuracy panels, worst/best
// execution-time ratios for the spread claims, and ns/op for the model
// evaluation cost (the paper's "about 5.4 ms per distribution").
package mheta_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"mheta"
	"mheta/internal/apps"
	"mheta/internal/cluster"
	"mheta/internal/core"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/experiments"
	"mheta/internal/instrument"
	"mheta/internal/mpi"
	"mheta/internal/sched"
	"mheta/internal/search"
	"mheta/internal/serve"
	"mheta/internal/stats"
)

func benchRunner() *experiments.Runner {
	r := experiments.DefaultRunner(experiments.ScaleTest)
	r.StepsPerLeg = 2
	return r
}

// BenchmarkTable1Configs builds and validates the four Table 1
// architectures (trivially fast; exists so every table has a bench
// target).
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range experiments.Table1() {
			if err := row.Spec.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure8Spectrum generates the distribution spectrum walk for
// each named configuration.
func BenchmarkFigure8Spectrum(b *testing.B) {
	app := apps.NewJacobi(apps.DefaultJacobiConfig())
	total := app.Prog.GlobalElems()
	bpe := app.Prog.MustVar("B").ElemBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, spec := range cluster.NamedAll() {
			pts := dist.Spectrum(total, spec, bpe, 4)
			if len(pts) == 0 {
				b.Fatal("empty spectrum")
			}
		}
	}
}

// BenchmarkFigure9All regenerates the top-left Figure 9 panel: all four
// applications over the seventeen architectures, reporting the panel's
// average and maximum percent difference.
func BenchmarkFigure9All(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		panel, err := r.Figure9All()
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, panel)
	}
}

// BenchmarkFigure9Prefetch regenerates the top-right panel: prefetching
// Jacobi over the twelve I/O-relevant architectures.
func BenchmarkFigure9Prefetch(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		panel, err := r.Figure9Prefetch()
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, panel)
	}
}

// BenchmarkFigure9RNA regenerates the bottom-left panel (the paper's
// best-case application).
func BenchmarkFigure9RNA(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		panel, err := r.Figure9App(experiments.RNABuilder())
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, panel)
	}
}

// BenchmarkFigure9CG regenerates the bottom-right panel (the paper's
// worst-case application, §5.4's sparse limitation).
func BenchmarkFigure9CG(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		panel, err := r.Figure9App(experiments.CGBuilder())
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, panel)
	}
}

func reportPanel(b *testing.B, panel experiments.Fig9Panel) {
	b.Helper()
	maxDiff := 0.0
	for _, pt := range panel.Points {
		if pt.Max > maxDiff {
			maxDiff = pt.Max
		}
	}
	b.ReportMetric(panel.OverallAvg*100, "avg%diff")
	b.ReportMetric(maxDiff*100, "max%diff")
}

// BenchmarkFigure10DC and BenchmarkFigure10IO regenerate the Figure 10
// predicted-vs-actual series.
func BenchmarkFigure10DC(b *testing.B) { benchFig1011(b, cluster.DC(8)) }
func BenchmarkFigure10IO(b *testing.B) { benchFig1011(b, cluster.IO(8)) }

// BenchmarkFigure11HY1 and BenchmarkFigure11HY2 regenerate Figure 11.
func BenchmarkFigure11HY1(b *testing.B) { benchFig1011(b, cluster.HY1(8)) }
func BenchmarkFigure11HY2(b *testing.B) { benchFig1011(b, cluster.HY2(8)) }

func benchFig1011(b *testing.B, spec cluster.Spec) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		var diffs []float64
		ratio := 0.0
		for _, ab := range experiments.PaperApps() {
			s, err := r.Sweep(spec, ab, false)
			if err != nil {
				b.Fatal(err)
			}
			diffs = append(diffs, s.Diffs()...)
			if rr := s.Ratio(); rr > ratio {
				ratio = rr
			}
		}
		b.ReportMetric(stats.Mean(diffs)*100, "avg%diff")
		b.ReportMetric(ratio, "worst/best")
	}
}

// BenchmarkModelEvaluate measures one MHETA evaluation — the paper's
// "about 5.4 ms per distribution" headline. ns/op is the comparable
// number.
func BenchmarkModelEvaluate(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	params, err := instrument.Collect(spec, app, dist.Block(cfg.Rows, 8), 42, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	model := core.MustModel(params)
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("B").ElemBytes, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.Predict(pts[i%len(pts)].Dist)
	}
}

// BenchmarkModelEvaluatePipelined measures evaluation cost for the
// pipelined (per-tile recurrence) application, the model's worst case.
func BenchmarkModelEvaluatePipelined(b *testing.B) {
	spec := cluster.DC(8)
	cfg := apps.DefaultRNAConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 128, 3
	app := apps.NewRNA(cfg)
	params, err := instrument.Collect(spec, app, dist.Block(cfg.Rows, 8), 42, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	model := core.MustModel(params)
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("T").ElemBytes, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.Predict(pts[i%len(pts)].Dist)
	}
}

// BenchmarkDeltaEvaluate measures one incremental (delta) evaluation over
// the spectrum walk — the same workload as BenchmarkModelEvaluate scored
// through core.DeltaEvaluator's cached busy terms. The delta%hit metric
// is the fraction of candidates served by the replay path (the rest fell
// back to full evaluation); results are bit-identical either way.
func BenchmarkDeltaEvaluate(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	params, err := instrument.Collect(spec, app, dist.Block(cfg.Rows, 8), 42, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	model := core.MustModel(params)
	de := model.Delta()
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("B").ElemBytes, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = de.Evaluate(pts[i%len(pts)].Dist)
	}
	st := de.Stats()
	if b.N > 0 && st.FullEvals <= int64(b.N) {
		b.ReportMetric(100*(1-float64(st.FullEvals)/float64(b.N)), "delta%hit")
	}
}

// BenchmarkDeltaEvaluatePipelined is BenchmarkModelEvaluatePipelined
// through the delta evaluator: the pipelined (per-tile recurrence)
// application is the model's worst case, and its busy terms cache the
// same way — only the clock chaining replays per candidate.
func BenchmarkDeltaEvaluatePipelined(b *testing.B) {
	spec := cluster.DC(8)
	cfg := apps.DefaultRNAConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 128, 3
	app := apps.NewRNA(cfg)
	params, err := instrument.Collect(spec, app, dist.Block(cfg.Rows, 8), 42, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	model := core.MustModel(params)
	de := model.Delta()
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("T").ElemBytes, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = de.Evaluate(pts[i%len(pts)].Dist)
	}
	st := de.Stats()
	if b.N > 0 && st.FullEvals <= int64(b.N) {
		b.ReportMetric(100*(1-float64(st.FullEvals)/float64(b.N)), "delta%hit")
	}
}

// BenchmarkInstrumentedIteration measures the cost of the full parameter
// acquisition (micro-benchmarks + the instrumented iteration) — the
// one-time price the runtime pays before it can search.
func BenchmarkInstrumentedIteration(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 96, 4
	app := apps.NewJacobi(cfg)
	base := dist.Block(cfg.Rows, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := instrument.Collect(spec, app, base, 42, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchGBS / Genetic / Annealing / Random measure the §5.3
// search algorithms over a real model, reporting model evaluations spent.
func BenchmarkSearchGBS(b *testing.B)       { benchSearch(b, "gbs") }
func BenchmarkSearchGenetic(b *testing.B)   { benchSearch(b, "genetic") }
func BenchmarkSearchAnnealing(b *testing.B) { benchSearch(b, "annealing") }
func BenchmarkSearchRandom(b *testing.B)    { benchSearch(b, "random") }

func benchSearch(b *testing.B, alg string) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res mheta.SearchResult
	for i := 0; i < b.N; i++ {
		res, err = mheta.SearchWith(alg, spec, app, model, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Evaluations), "evals")
	// Candidate throughput: model evaluations per wall-clock second, the
	// figure that bounds how elaborate a runtime search can be (§5.3).
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(res.Evaluations)*1e9/perOp, "cands/s")
	blk := model.Predict(mheta.BlockDistribution(app, spec)).Total
	b.ReportMetric(blk/res.Time, "speedup-vs-blk")
}

// BenchmarkSearchParallel measures the concurrent evaluation pool: GBS
// and Genetic at 1, 4 and NumCPU workers, reporting allocs/op and the
// wall-clock speedup over a freshly measured serial baseline. Results are
// bit-identical across worker counts (see internal/search pool tests);
// only the speed changes.
func BenchmarkSearchParallel(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 4}
	if n := runtime.NumCPU(); n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, alg := range []string{mheta.AlgGBS, mheta.AlgGenetic} {
		serial := serialSearchNs(b, alg, spec, app, model)
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", alg, workers), func(b *testing.B) {
				b.ReportAllocs()
				var res mheta.SearchResult
				for i := 0; i < b.N; i++ {
					res, err = mheta.SearchWithWorkers(alg, spec, app, model, 42, workers)
					if err != nil {
						b.Fatal(err)
					}
				}
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(serial/perOp, "speedup-vs-serial")
				b.ReportMetric(float64(res.Evaluations), "evals")
				b.ReportMetric(float64(res.Evaluations)*1e9/perOp, "cands/s")
			})
		}
	}
}

// serialSearchNs times the single-worker search (best of three after a
// warm-up) as the speedup baseline.
func serialSearchNs(b *testing.B, alg string, spec mheta.ClusterSpec, app *mheta.App, model *mheta.Model) float64 {
	b.Helper()
	best := math.MaxFloat64
	for i := 0; i < 4; i++ {
		start := time.Now()
		if _, err := mheta.SearchWithWorkers(alg, spec, app, model, 42, 1); err != nil {
			b.Fatal(err)
		}
		if el := float64(time.Since(start).Nanoseconds()); i > 0 && el < best {
			best = el
		}
	}
	return best
}

// BenchmarkMemoisedEvaluate measures the memo's warm path — re-scoring a
// batch of already-seen distributions. The acceptance bar is zero
// allocs/op: a fully memoised batch touches only the hash table.
func BenchmarkMemoisedEvaluate(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		b.Fatal(err)
	}
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("B").ElemBytes, 8)
	ds := make([]dist.Distribution, len(pts))
	for i, pt := range pts {
		ds[i] = pt.Dist
	}
	memo := search.NewMemo(search.ModelEvaluator{Model: model})
	out := make([]float64, len(ds))
	memo.EvaluateBatchInto(out, ds) // warm

	// Baseline: the seed's memo scheme — a map keyed by d.String(), which
	// allocates the key on every lookup, hit or miss.
	stringMemo := make(map[string]float64, len(ds))
	for i, d := range ds {
		stringMemo[d.String()] = out[i]
	}
	start := time.Now()
	const rounds = 64
	for r := 0; r < rounds; r++ {
		for i, d := range ds {
			out[i] = stringMemo[d.String()]
		}
	}
	baseline := float64(time.Since(start).Nanoseconds()) / rounds

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo.EvaluateBatchInto(out, ds)
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(baseline/perOp, "speedup-vs-string-memo")
	b.ReportMetric(float64(len(ds)), "dists/batch")
}

// BenchmarkMemoisedEvaluateObserved is BenchmarkMemoisedEvaluate with a
// live metrics registry attached — the enabled-instrumentation cost of
// the same warm path. CI compares the two to bound the observability
// overhead; with no registry the only cost is a nil check, pinned at
// zero allocations by TestMemoisedBatchZeroAlloc.
func BenchmarkMemoisedEvaluateObserved(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		b.Fatal(err)
	}
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("B").ElemBytes, 8)
	ds := make([]dist.Distribution, len(pts))
	for i, pt := range pts {
		ds[i] = pt.Dist
	}
	memo := search.NewMemo(search.ModelEvaluator{Model: model})
	memo.Observe(mheta.NewMetrics())
	out := make([]float64, len(ds))
	memo.EvaluateBatchInto(out, ds) // warm

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo.EvaluateBatchInto(out, ds)
	}
	b.ReportMetric(float64(len(ds)), "dists/batch")
}

// BenchmarkMemoConcurrentBatches measures warm batch evaluation on one
// shared memo from GOMAXPROCS concurrent callers — the convoy case for a
// design that serialises whole batches behind a single scratch mutex.
// The acceptance is no throughput cliff versus the serial
// BenchmarkMemoisedEvaluate: per-call ns/op should stay in the same
// ballpark as the serial warm batch rather than multiplying by the
// caller count.
func BenchmarkMemoConcurrentBatches(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		b.Fatal(err)
	}
	pts := dist.SpectrumFull(cfg.Rows, spec, app.Prog.MustVar("B").ElemBytes, 8)
	ds := make([]dist.Distribution, len(pts))
	for i, pt := range pts {
		ds[i] = pt.Dist
	}
	memo := search.NewMemo(search.ModelEvaluator{Model: model})
	warm := make([]float64, len(ds))
	memo.EvaluateBatchInto(warm, ds) // every batch below is fully memoised
	b.ReportMetric(float64(len(ds)), "dists/batch")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		out := make([]float64, len(ds))
		for pb.Next() {
			memo.EvaluateBatchInto(out, ds)
		}
	})
}

// BenchmarkServePredict measures the serving path end to end: parallel
// HTTP clients POSTing /predict at a live server, answered through the
// admission queue, the coalescing batcher and the shared cross-request
// memo. Requests rotate over a handful of distributions, the steady
// state of a runtime system polling candidate scores. The req/s metric
// is the headline — mheta-bench holds it to an absolute floor of 1000
// via -min-metric (ns/op and allocs stay ungated: net/http allocation
// counts drift across Go releases).
func BenchmarkServePredict(b *testing.B) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	spec := cluster.HY1(8)
	app := experiments.JacobiBuilder(false).Build(experiments.ScaleTest)
	blk := dist.Block(app.Prog.GlobalElems(), spec.N())
	bodies := make([][]byte, 8)
	for i := range bodies {
		d := blk.Clone()
		d[0] -= i
		d[len(d)-1] += i
		body, err := json.Marshal(map[string]any{
			"app": "jacobi", "config": "HY1", "scale": "test", "dist": d,
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	post := func(body []byte) error {
		resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	if err := post(bodies[0]); err != nil { // warm: instruments the engine
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := post(bodies[i%len(bodies)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	// Mean coalesced batch size, from the server's own histogram.
	snap := srv.Metrics().Snapshot()
	for _, h := range snap.Histograms {
		if h.Name == "serve.predict.batchsize" && h.Count > 0 {
			b.ReportMetric(h.Sum/float64(h.Count), "reqs/batch")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) -----------------------------------

// BenchmarkAblationNoise compares prediction error with and without
// emulation noise: with noise off, accuracy should approach 100%,
// demonstrating the error budget is measurement perturbation, not model
// structure.
func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, amp := range []float64{0, 0.02} {
			r := benchRunner()
			r.NoiseAmp = amp
			s, err := r.Sweep(cluster.HY1(8), experiments.JacobiBuilder(false), false)
			if err != nil {
				b.Fatal(err)
			}
			name := "avg%diff-noise0"
			if amp > 0 {
				name = "avg%diff-noise2"
			}
			b.ReportMetric(stats.Mean(s.Diffs())*100, name)
		}
	}
}

// BenchmarkAblationPrefetchTransform compares the Figure 5 instrumented
// prefetch (blocking issue + no-op wait) against what naive timers would
// measure (Figure 4 case 2: the wait hides the true latency), showing why
// the transform is needed: without it the extracted overlap is zero and
// the read latencies are under-measured.
func BenchmarkAblationPrefetchTransform(b *testing.B) {
	spec := cluster.IO(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 256, 4
	cfg.Prefetch = true
	app := apps.NewJacobi(cfg)
	base := dist.Block(cfg.Rows, 8)
	for i := 0; i < b.N; i++ {
		// With the transform (normal Collect path).
		params, err := instrument.Collect(spec, app, base, 42, 0.02)
		if err != nil {
			b.Fatal(err)
		}
		var overlap float64
		st := params.Sections[0].Stages[0]
		for _, ov := range st.OverlapPerElem {
			overlap += ov
		}
		b.ReportMetric(overlap/float64(len(st.OverlapPerElem))*1e9, "ns-overlap/elem")

		// Without the transform: run the instrumented iteration with the
		// disk left in normal mode — waits absorb the latency invisibly.
		w := mpi.NewWorld(spec, 42, 0.02)
		for p := 0; p < w.Size(); p++ {
			w.Rank(p).Disk().SetMode(0)
		}
		res, err := exec.Run(w, app, base, exec.Options{Mode: exec.ModeInstrument})
		if err != nil {
			b.Fatal(err)
		}
		// Naive measurement sees only the post-overlap wait remainder.
		var naiveRead int64
		for _, rec := range res.Recorders {
			for _, io := range rec.IO {
				naiveRead += io.ReadBytes
			}
		}
		b.ReportMetric(float64(naiveRead), "naive-bytes")
	}
}

// BenchmarkAblationSteadyState quantifies the two-iteration steady-state
// evaluation against the naive single-iteration makespan × N (§4.2.3
// read literally): the steady-state form halves the residual error at
// small iteration times.
func BenchmarkAblationSteadyState(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	base := dist.Block(cfg.Rows, 8)
	params, err := instrument.Collect(spec, app, base, 42, 0)
	if err != nil {
		b.Fatal(err)
	}
	model := core.MustModel(params)
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(spec, 777, 0)
		res, err := exec.Run(w, app, base, exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pred := model.Predict(base)
		naive := pred.NodeTimes // first-iteration makespan
		naiveMax := 0.0
		for _, tm := range naive {
			if tm > naiveMax {
				naiveMax = tm
			}
		}
		naiveTotal := naiveMax * float64(cfg.Iterations)
		b.ReportMetric(stats.PercentDiff(pred.Total, res.Time)*100, "steady%diff")
		b.ReportMetric(stats.PercentDiff(naiveTotal, res.Time)*100, "naive%diff")
	}
}

// BenchmarkEmulatedRun measures the emulator's own throughput: one full
// Jacobi run (5 iterations, 8 ranks) including real numerics.
func BenchmarkEmulatedRun(b *testing.B) {
	spec := cluster.HY1(8)
	cfg := apps.DefaultJacobiConfig()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 128, 5
	app := apps.NewJacobi(cfg)
	base := dist.Block(cfg.Rows, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(spec, 777, 0.02)
		if _, err := exec.Run(w, app, base, exec.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulate measures event-engine scaling: one nearest-neighbour
// Jacobi run (2 rows per rank, 2 iterations) at each rank count,
// reporting scheduler throughput (events/s = heap dispatches + message
// deliveries per second) and allocations. The 10k point is the ISSUE 7
// headline: goroutine-per-rank couldn't reach it in seconds; the event
// heap must.
func BenchmarkEmulate(b *testing.B) {
	for _, ranks := range []int{8, 256, 4096, 10000} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			cfg := apps.DefaultJacobiConfig()
			cfg.Rows, cfg.Cols, cfg.Iterations = 2*ranks, 4, 2
			app := apps.NewJacobi(cfg)
			spec := cluster.DC(ranks)
			for i := range spec.Nodes {
				spec.Nodes[i] = cluster.NodeSpec{CPUPower: 1, MemoryBytes: 1 << 20, DiskScale: 1}
			}
			d := dist.Block(cfg.Rows, ranks)
			var events uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var st sched.Stats
				w := mpi.NewWorld(spec, 777, 0.02)
				if _, err := exec.Run(w, app, d, exec.Options{Engine: exec.EngineEvent, EventStats: &st}); err != nil {
					b.Fatal(err)
				}
				events += st.Events + st.Sends
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSearchStudy runs the full §5.3 four-algorithm comparison.
func BenchmarkSearchStudy(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		study, err := r.RunSearchStudy(cluster.HY2(8), experiments.JacobiBuilder(false))
		if err != nil {
			b.Fatal(err)
		}
		best := study.Baseline.Actual
		for _, row := range study.Rows {
			if row.Actual < best {
				best = row.Actual
			}
		}
		b.ReportMetric(study.Baseline.Actual/best, "speedup-vs-blk")
	}
}

var _ = search.Result{} // keep the search package linked for godoc cross-refs

// BenchmarkExtensionMultigrid sweeps the §6 future-work application
// (two-grid V-cycle) on HY1, reporting its prediction accuracy — the
// "wider range of relative communication, computation, and I/O costs"
// the paper wanted to test MHETA against.
func BenchmarkExtensionMultigrid(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		s, err := r.Sweep(cluster.HY1(8), experiments.MultigridBuilder(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(s.Diffs())*100, "avg%diff")
	}
}

// BenchmarkAblationInterference quantifies the §3.2 dedicated-environment
// assumption: prediction error as unseen external load grows.
func BenchmarkAblationInterference(b *testing.B) {
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.InterferenceStudy(cluster.HY1(8), experiments.JacobiBuilder(false), []float64{0, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgDiff*100, "avg%diff-idle")
		b.ReportMetric(rows[1].AvgDiff*100, "avg%diff-load40")
	}
}

// BenchmarkExtensionSharedDisk sweeps the global-disk extension on the IO
// configuration, reporting prediction accuracy under contention.
func BenchmarkExtensionSharedDisk(b *testing.B) {
	r := benchRunner()
	spec := cluster.IO(8).WithSharedDisk()
	for i := 0; i < b.N; i++ {
		s, err := r.Sweep(spec, experiments.JacobiBuilder(false), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(s.Diffs())*100, "avg%diff")
		b.ReportMetric(s.Ratio(), "worst/best")
	}
}
