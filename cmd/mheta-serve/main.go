// mheta-serve runs the MHETA prediction/search service: an HTTP/JSON
// server over the same model pipeline the CLI binaries use, returning
// bit-identical values at request throughput (see internal/serve).
//
// Usage:
//
//	mheta-serve -addr :8080
//	mheta-serve -addr 127.0.0.1:0 -workers 4 -max-searches 8
//	mheta-serve -metrics final.json   # end-of-run snapshot, plus live GET /metrics
//
// Endpoints:
//
//	POST /predict  {"app","config","scale","seed","dist","detailed","timeout_ms"}
//	POST /search   {"app","config","scale","seed","alg","workers","timeout_ms"}
//	GET  /metrics  observability registry snapshot as JSON
//
// SIGINT/SIGTERM drains gracefully: new requests are refused with 503,
// in-flight work completes (bounded by -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mheta/cmd/internal/cliutil"
	"mheta/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-serve: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 1, "evaluation workers per scenario engine (>= 1)")
	queueDepth := flag.Int("queue-depth", 256, "predict admission-queue depth per engine (>= 1); overflow sheds with 429")
	maxBatch := flag.Int("max-batch", 64, "max predict requests coalesced into one evaluation batch (>= 1)")
	memoLimit := flag.Int("memo-limit", 1<<20, "shared memo entries per engine before epoch eviction (>= 1)")
	maxSearches := flag.Int("max-searches", 2, "concurrently running searches (>= 1)")
	searchBacklog := flag.Int("search-backlog", 0, "searches allowed to wait beyond -max-searches (0 selects 2x -max-searches)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested timeout_ms")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	if *workers < 1 {
		cliutil.Usagef("-workers must be at least 1, got %d", *workers)
	}
	if *queueDepth < 1 {
		cliutil.Usagef("-queue-depth must be at least 1, got %d", *queueDepth)
	}
	if *maxBatch < 1 {
		cliutil.Usagef("-max-batch must be at least 1, got %d", *maxBatch)
	}
	if *memoLimit < 1 {
		cliutil.Usagef("-memo-limit must be at least 1, got %d", *memoLimit)
	}
	if *maxSearches < 1 {
		cliutil.Usagef("-max-searches must be at least 1, got %d", *maxSearches)
	}
	if *searchBacklog < 0 {
		cliutil.Usagef("-search-backlog must not be negative, got %d", *searchBacklog)
	}
	if *timeout <= 0 || *maxTimeout <= 0 || *drain <= 0 {
		cliutil.Usagef("-timeout, -max-timeout and -drain must be positive")
	}
	reg := obsFlags.Start()
	defer obsFlags.Finish()

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		MaxBatch:       *maxBatch,
		MemoLimit:      *memoLimit,
		MaxSearches:    *maxSearches,
		SearchBacklog:  *searchBacklog,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Registry:       reg, // nil makes a private one; GET /metrics works either way
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address matters when -addr picks port 0.
	log.Printf("listening on http://%s", ln.Addr())
	httpSrv := &http.Server{Handler: srv}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("%s: draining (up to %s)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop the listener and wait for HTTP handlers, then stop the
		// serving internals (batchers, engines).
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Printf("drained")
}
