package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubFatal swaps fatalf for one that records the message and unwinds via
// panic (log.Fatalf never returns, so the stub must not either); the
// returned function restores the original and reports what was recorded.
func stubFatal(t *testing.T) func() string {
	t.Helper()
	var got string
	orig := fatalf
	fatalf = func(format string, args ...any) {
		got = format
		for _, a := range args {
			if err, ok := a.(error); ok {
				got += ": " + err.Error()
			}
		}
		panic("cliutil test: fatalf")
	}
	t.Cleanup(func() { fatalf = orig })
	return func() string { return got }
}

func obsFlagsFor(metrics, memprofile string) *ObsFlags {
	empty := ""
	m, p := metrics, memprofile
	return &ObsFlags{metrics: &m, cpuProfile: &empty, memProfile: &p}
}

// TestStartFailsFastOnUnwritableMetrics pins the fail-fast contract: an
// unwritable -metrics path must abort in Start, before any compute, not
// in Finish after the run is spent.
func TestStartFailsFastOnUnwritableMetrics(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "m.json")
	f := obsFlagsFor(bad, "")
	recorded := stubFatal(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Start returned despite unwritable -metrics path")
			}
		}()
		f.Start()
	}()
	if !strings.Contains(recorded(), "-metrics") {
		t.Errorf("fatal message %q does not name -metrics", recorded())
	}
}

// TestStartFailsFastOnUnwritableMemprofile is the same contract for
// -memprofile, which used to surface only at exit.
func TestStartFailsFastOnUnwritableMemprofile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof")
	f := obsFlagsFor("", bad)
	recorded := stubFatal(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Start returned despite unwritable -memprofile path")
			}
		}()
		f.Start()
	}()
	if !strings.Contains(recorded(), "-memprofile") {
		t.Errorf("fatal message %q does not name -memprofile", recorded())
	}
}

// TestStartCreatesOutputsUpFront checks the happy path: Start truncates
// the output files immediately (so permissions are proven), and Finish
// fills the metrics file with the registry JSON.
func TestStartCreatesOutputsUpFront(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	f := obsFlagsFor(metrics, "")
	reg := f.Start()
	if reg == nil {
		t.Fatal("Start returned a nil registry with -metrics set")
	}
	if fi, err := os.Stat(metrics); err != nil || fi.Size() != 0 {
		t.Fatalf("metrics file not created empty up front: fi=%v err=%v", fi, err)
	}
	reg.Counter("test.count").Inc()
	f.Finish()
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "test.count") {
		t.Fatalf("metrics JSON missing counter:\n%s", data)
	}
}
