// Package cliutil carries the plumbing shared by the mheta command-line
// binaries: usage-error reporting with the conventional exit code 2,
// validation for the flags every binary interprets the same way, and the
// observability surface (-metrics, -cpuprofile, -memprofile) so each
// main wires it identically.
package cliutil

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"mheta/internal/experiments"
	"mheta/internal/obs"
)

// exit and fatalf are swapped out by tests.
var (
	exit   = os.Exit
	fatalf = log.Fatalf
)

// Usagef reports a bad flag value on stderr — prefixed like the binary's
// other messages via the log prefix the main installed — and exits 2,
// the flag package's own convention for usage errors. Runtime failures
// (I/O errors, model errors) stay on log.Fatal and exit 1.
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s%s (run with -h for usage)\n", log.Prefix(), fmt.Sprintf(format, args...))
	exit(2)
}

// ParseScale validates a -scale value; an unknown scale is a usage
// error, not a silent fallback or a runtime failure.
func ParseScale(s string) experiments.Scale {
	sc, err := experiments.ParseScale(s)
	if err != nil {
		Usagef("%v", err)
	}
	return sc
}

// ParseParallel validates a -parallel value: worker counts start at 1.
// "All cores" is spelled explicitly (e.g. -parallel $(nproc)); 0 and
// negatives used to fall back silently and now fail loudly.
func ParseParallel(n int) int {
	if n <= 0 {
		Usagef("-parallel must be at least 1, got %d (use -parallel %d for all cores)", n, runtime.GOMAXPROCS(0))
	}
	return n
}

// ObsFlags is the observability flag surface shared by the binaries.
type ObsFlags struct {
	metrics    *string
	cpuProfile *string
	memProfile *string

	reg         *obs.Registry
	cpuFile     *os.File
	memFile     *os.File
	metricsFile *os.File
}

// RegisterObsFlags declares -metrics, -cpuprofile and -memprofile on the
// default flag set; call before flag.Parse.
func RegisterObsFlags() *ObsFlags {
	return &ObsFlags{
		metrics:    flag.String("metrics", "", "write end-of-run metrics as JSON to this file and a summary to stderr"),
		cpuProfile: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		memProfile: flag.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins profiling and returns the metrics registry — nil unless
// -metrics was given, so instrumented code paths stay no-ops by default.
// Call after flag.Parse; pair with a deferred Finish.
//
// Every output path is created (or truncated) here, not in Finish: an
// unwritable -metrics or -memprofile path must abort before the run's
// compute is spent, not after. The files stay open until Finish fills
// them, so a crashed run leaves empty artifacts rather than stale ones.
func (f *ObsFlags) Start() *obs.Registry {
	if *f.cpuProfile != "" {
		file, err := os.Create(*f.cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		f.cpuFile = file
	}
	if *f.memProfile != "" {
		file, err := os.Create(*f.memProfile)
		if err != nil {
			fatalf("-memprofile: %v", err)
		}
		f.memFile = file
	}
	if *f.metrics != "" {
		file, err := os.Create(*f.metrics)
		if err != nil {
			fatalf("-metrics: %v", err)
		}
		f.metricsFile = file
		f.reg = obs.New()
	}
	return f.reg
}

// Finish stops the CPU profile, writes the heap profile, writes the
// metrics file and prints the metrics summary to stderr. stdout is never
// touched, so golden output stays bit-identical with -metrics enabled.
func (f *ObsFlags) Finish() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			log.Printf("-cpuprofile: %v", err)
		}
		f.cpuFile = nil
	}
	if f.memFile != nil {
		runtime.GC() // up-to-date allocation data, as the pprof docs advise
		if err := pprof.WriteHeapProfile(f.memFile); err != nil {
			fatalf("-memprofile: %v", err)
		}
		if err := f.memFile.Close(); err != nil {
			fatalf("-memprofile: %v", err)
		}
		f.memFile = nil
	}
	if f.reg != nil {
		if err := f.reg.WriteJSON(f.metricsFile); err != nil {
			fatalf("-metrics: %v", err)
		}
		if err := f.metricsFile.Close(); err != nil {
			fatalf("-metrics: %v", err)
		}
		f.metricsFile = nil
		if s := f.reg.Summary(); s != "" {
			fmt.Fprint(os.Stderr, s)
		}
	}
}
