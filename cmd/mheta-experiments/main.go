// mheta-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	mheta-experiments [-scale paper|quick|test] [-which all|table1|fig8|fig9|fig9pf|fig9apps|fig10|fig11|ratios|search|latency] [-parallel N]
//
// Output is the text rendering of each experiment; EXPERIMENTS.md records
// a reference run alongside the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"log"

	"mheta/cmd/internal/cliutil"
	"mheta/internal/apps"
	"mheta/internal/cluster"
	"mheta/internal/experiments"
)

// experimentNames lists every -which value; validation is an exact match
// against this list, up front — the old check ran after the experiments
// and accepted any substring of the joined names ("fig", "s", ...).
var experimentNames = []string{
	"table1", "fig8", "fig9", "fig9pf", "fig9apps", "fig10", "fig11",
	"ratios", "search", "interference", "latency",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-experiments: ")
	scaleFlag := flag.String("scale", "quick", "experiment scale: paper, quick or test")
	which := flag.String("which", "all", "experiment to run: all, table1, fig8, fig9, fig9pf, fig9apps, fig10, fig11, ratios, search, interference, latency")
	seed := flag.Uint64("seed", 0x8E7A, "noise seed")
	parallel := flag.Int("parallel", 1, "worker goroutines for sweep fan-out and search evaluation (>= 1); results are identical for any worker count")
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	scale := cliutil.ParseScale(*scaleFlag)
	if *which != "all" && !knownExperiment(*which) {
		cliutil.Usagef("unknown experiment %q (see -which in -h)", *which)
	}
	r := experiments.DefaultRunner(scale)
	r.Seed = *seed
	r.Workers = cliutil.ParseParallel(*parallel)
	r.Obs = obsFlags.Start()
	defer obsFlags.Finish()

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table1", func() error {
		fmt.Println(experiments.RenderTable1())
		return nil
	})
	run("fig8", func() error {
		cfg := apps.DefaultJacobiConfig()
		app := apps.NewJacobi(cfg)
		for _, spec := range cluster.NamedAll() {
			fmt.Println(experiments.RenderFigure8(spec, app.Prog.GlobalElems(), app.Prog.MustVar("B").ElemBytes, 2))
		}
		return nil
	})
	run("fig9", func() error {
		p, err := r.Figure9All()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(p))
		return nil
	})
	run("fig9pf", func() error {
		p, err := r.Figure9Prefetch()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(p))
		return nil
	})
	run("fig9apps", func() error {
		for _, ab := range []experiments.AppBuilder{experiments.RNABuilder(), experiments.CGBuilder()} {
			p, err := r.Figure9App(ab)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFig9(p))
		}
		return nil
	})
	var figs1011 []experiments.Fig1011
	run("fig10", func() error {
		fs, err := r.Figure10()
		if err != nil {
			return err
		}
		figs1011 = append(figs1011, fs...)
		for _, f := range fs {
			fmt.Println(experiments.RenderFig1011(f))
		}
		return nil
	})
	run("fig11", func() error {
		fs, err := r.Figure11()
		if err != nil {
			return err
		}
		figs1011 = append(figs1011, fs...)
		for _, f := range fs {
			fmt.Println(experiments.RenderFig1011(f))
		}
		return nil
	})
	run("ratios", func() error {
		if len(figs1011) == 0 {
			fs10, err := r.Figure10()
			if err != nil {
				return err
			}
			fs11, err := r.Figure11()
			if err != nil {
				return err
			}
			figs1011 = append(fs10, fs11...)
		}
		fmt.Println(experiments.RenderRatios(experiments.BestWorstRatios(figs1011)))
		var sweeps []experiments.SweepResult
		for _, f := range figs1011 {
			sweeps = append(sweeps, f.Sweeps...)
		}
		fmt.Println(experiments.RenderAccuracy(experiments.AccuracySummary(sweeps)))
		return nil
	})
	run("search", func() error {
		for _, spec := range []string{"HY1", "HY2"} {
			cs, err := cluster.Named(spec)
			if err != nil {
				return err
			}
			s, err := r.RunSearchStudy(cs, experiments.JacobiBuilder(false))
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderSearchStudy(s))
		}
		return nil
	})
	run("interference", func() error {
		rows, err := r.InterferenceStudy(cluster.HY1(8), experiments.JacobiBuilder(false),
			[]float64{0, 0.1, 0.2, 0.4, 0.8})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderInterference("Jacobi", "HY1", rows))
		return nil
	})
	run("latency", func() error {
		d, err := r.ModelLatency()
		if err != nil {
			return err
		}
		fmt.Printf("Model evaluation latency: %v per distribution (paper: ~5.4 ms on 2005 hardware)\n", d)
		return nil
	})
}

func knownExperiment(name string) bool {
	for _, n := range experimentNames {
		if n == name {
			return true
		}
	}
	return false
}
