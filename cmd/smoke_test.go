// Smoke tests for the command-line binaries: each must build, print
// usage on -h, and complete one tiny end-to-end invocation at -scale
// test. These guard the flag surface and the wiring from flags to the
// library — the numerical behaviour behind them is covered by the unit,
// validation, and golden suites.
package cmd_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binDir holds the binaries built once in TestMain.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mheta-smoke-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	// Building from the package directory, ./... covers exactly the
	// cmd/ mains.
	out, err := exec.Command("go", "build", "-o", dir, "./...").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "go build ./cmd/...: %v\n%s", err, out)
		os.Exit(1)
	}
	binDir = dir
	os.Exit(m.Run())
}

// run executes one of the built binaries and returns its combined output,
// failing the test on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, bin), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestHelp asserts every binary exits cleanly on -h (the flag package
// treats an explicit help request as success) and documents its flags.
func TestHelp(t *testing.T) {
	for bin, flag := range map[string]string{
		"mheta-predict":     "-params",
		"mheta-emulate":     "-app",
		"mheta-search":      "-alg",
		"mheta-experiments": "-which",
		"mheta-lint":        "maporder",
		"mheta-bench":       "-baseline",
		"mheta-serve":       "-addr",
	} {
		out, err := exec.Command(filepath.Join(binDir, bin), "-h").CombinedOutput()
		if err != nil {
			t.Errorf("%s -h: %v", bin, err)
		}
		if !strings.Contains(string(out), flag) {
			t.Errorf("%s -h output does not mention %s:\n%s", bin, flag, out)
		}
	}
}

// TestPredictCollect exercises the paper's two-step pipeline: -collect
// writes a parameter file, a second invocation loads it and predicts.
func TestPredictCollect(t *testing.T) {
	params := filepath.Join(t.TempDir(), "params.json")
	out := run(t, "mheta-predict", "-params", params, "-collect", "jacobi:DC", "-scale", "test")
	if !strings.Contains(out, "collected parameters") {
		t.Fatalf("collect output:\n%s", out)
	}
	out = run(t, "mheta-predict", "-params", params, "-detailed")
	for _, want := range []string{"program:", "jacobi", "per iteration:", "node times"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q:\n%s", want, out)
		}
	}
}

// TestEmulate runs one predicted-vs-actual row plus a 1-step spectrum
// sweep.
func TestEmulate(t *testing.T) {
	out := run(t, "mheta-emulate", "-app", "jacobi", "-config", "DC", "-scale", "test")
	if !strings.Contains(out, "actual(s)") || !strings.Contains(out, "given") {
		t.Fatalf("emulate output:\n%s", out)
	}
	out = run(t, "mheta-emulate", "-app", "lanczos", "-config", "HY1", "-scale", "test", "-spectrum", "1")
	if !strings.Contains(out, "I-C/Bal") {
		t.Fatalf("spectrum output missing anchor label:\n%s", out)
	}
}

// TestSearch runs the cheapest search on the tiny scale and verifies the
// found distribution on the emulator.
func TestSearch(t *testing.T) {
	out := run(t, "mheta-search", "-app", "jacobi", "-config", "HY1", "-scale", "test", "-alg", "gbs", "-verify")
	for _, want := range []string{"blk", "gbs", "verify"} {
		if !strings.Contains(out, want) {
			t.Errorf("search output missing %q:\n%s", want, out)
		}
	}
}

// writeBadModule lays out a throwaway module containing three deliberate
// violations — a //lint:deterministic file calling time.Now, a
// //mheta:guardedby field read without its lock, and a leaked ticker
// goroutine with no stop signal — the known-bad input the lint smoke
// tests run against.
func writeBadModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module badmod\n\ngo 1.22\n",
		"bad.go": `//lint:deterministic
package badmod

import "time"

// Stamp reads the wall clock inside the deterministic contract.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"racy.go": `package badmod

import "sync"

// Box plants a lock-discipline violation for the guarded analyzer.
type Box struct {
	mu sync.Mutex
	n  int //mheta:guardedby mu
}

// Peek reads n without holding mu.
func (b *Box) Peek() int { return b.n }
`,
		"leaky.go": `package badmod

import "time"

// Tick plants a leaked goroutine for the leakcheck analyzer: the ticker
// loop has no stop signal, so the goroutine never terminates.
func Tick() {
	go func() {
		t := time.NewTicker(time.Second)
		for {
			<-t.C
		}
	}()
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLintClean asserts the linter passes over this repository — the
// contracts it enforces must hold on the tree that ships it.
func TestLintClean(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "mheta-lint"), "./...")
	cmd.Dir = ".." // repo root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("mheta-lint ./... on the repo: %v\n%s", err, out)
	}
}

// TestLintKnownBad asserts the linter exits non-zero (specifically 2,
// vet's findings code) on a module with a planted violation, in both
// standalone and `go vet -vettool` modes.
func TestLintKnownBad(t *testing.T) {
	bad := writeBadModule(t)
	lint := filepath.Join(binDir, "mheta-lint")

	cmd := exec.Command(lint, "./...")
	cmd.Dir = bad
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("standalone on bad module: err=%v (want exit 2)\n%s", err, out)
	}
	if !strings.Contains(string(out), "nondeterminism") || !strings.Contains(string(out), "time.Now") {
		t.Errorf("finding not reported:\n%s", out)
	}
	if !strings.Contains(string(out), "guarded") || !strings.Contains(string(out), "requires holding b.mu") {
		t.Errorf("guardedby finding not reported:\n%s", out)
	}
	if !strings.Contains(string(out), "leakcheck") || !strings.Contains(string(out), "goroutine may never terminate") {
		t.Errorf("leaked-ticker finding not reported:\n%s", out)
	}

	cmd = exec.Command("go", "vet", "-vettool="+lint, "./...")
	cmd.Dir = bad
	out, err = cmd.CombinedOutput()
	if !errors.As(err, &exit) {
		t.Fatalf("go vet -vettool on bad module succeeded; want failure\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now") {
		t.Errorf("vettool finding not reported:\n%s", out)
	}
	if !strings.Contains(string(out), "requires holding b.mu") {
		t.Errorf("vettool guardedby finding not reported:\n%s", out)
	}
	if !strings.Contains(string(out), "goroutine may never terminate") {
		t.Errorf("vettool leaked-ticker finding not reported:\n%s", out)
	}
}

// TestLintJSON pins the machine-readable output: -json on the bad module
// must emit a JSON array whose records carry file, position, analyzer,
// message and suppression status, and still exit 2.
func TestLintJSON(t *testing.T) {
	bad := writeBadModule(t)
	cmd := exec.Command(filepath.Join(binDir, "mheta-lint"), "-json", "./...")
	cmd.Dir = bad
	out, err := cmd.Output() // stdout only: the JSON must stand alone
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("-json on bad module: err=%v (want exit 2)\n%s", err, out)
	}
	var findings []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out)
	}
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("incomplete finding record: %+v", f)
		}
		if f.Suppressed {
			t.Errorf("no suppressions planted, yet %+v is marked suppressed", f)
		}
		byAnalyzer[f.Analyzer]++
	}
	for _, want := range []string{"nondeterminism", "guarded", "leakcheck"} {
		if byAnalyzer[want] == 0 {
			t.Errorf("-json findings missing analyzer %s: %v", want, byAnalyzer)
		}
	}
}

// runExpectUsage executes a binary expecting a usage error: exit code 2
// and a message mentioning every want string.
func runExpectUsage(t *testing.T, bin string, wants []string, args ...string) {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, bin), args...).CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("%s %s: err=%v, want exit 2\n%s", bin, strings.Join(args, " "), err, out)
	}
	for _, want := range wants {
		if !strings.Contains(string(out), want) {
			t.Errorf("%s %s: output missing %q:\n%s", bin, strings.Join(args, " "), want, out)
		}
	}
}

// TestFlagRejection pins the usage-error exits: bad -scale and
// non-positive -parallel used to fall back silently (parallel) or exit 1
// mid-run (scale); both are flag mistakes and must exit 2 before any
// work happens.
func TestFlagRejection(t *testing.T) {
	for _, bin := range []string{"mheta-emulate", "mheta-search", "mheta-predict", "mheta-experiments"} {
		runExpectUsage(t, bin, []string{"scale"}, "-scale", "enormous")
	}
	for _, bin := range []string{"mheta-search", "mheta-experiments"} {
		runExpectUsage(t, bin, []string{"-parallel"}, "-scale", "test", "-parallel", "0")
		runExpectUsage(t, bin, []string{"-parallel"}, "-scale", "test", "-parallel", "-4")
	}
	runExpectUsage(t, "mheta-predict", []string{"-params"})
	runExpectUsage(t, "mheta-experiments", []string{"unknown experiment"}, "-scale", "test", "-which", "fig")
	// -trace-out preconditions on mheta-search.
	runExpectUsage(t, "mheta-search", []string{"-verify"},
		"-scale", "test", "-alg", "gbs", "-trace-out", "t.json")
	runExpectUsage(t, "mheta-search", []string{"single -alg"},
		"-scale", "test", "-alg", "all", "-verify", "-trace-out", "t.json")
	// -trace-out on mheta-emulate needs the single-run path.
	runExpectUsage(t, "mheta-emulate", []string{"-spectrum"},
		"-scale", "test", "-spectrum", "2", "-trace-out", "t.json")
}

// TestEmulateObservability runs the emulator with every observability
// flag and checks the artifacts: Chrome trace JSON, metrics JSON, and
// pprof profiles — while stdout keeps the plain report format.
func TestEmulateObservability(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.json")
	metricsFile := filepath.Join(dir, "metrics.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out := run(t, "mheta-emulate", "-app", "jacobi", "-config", "IO", "-scale", "test",
		"-trace-out", traceFile, "-metrics", metricsFile, "-cpuprofile", cpu, "-memprofile", mem)
	if !strings.Contains(out, "actual(s)") {
		t.Fatalf("report missing:\n%s", out)
	}
	var events []map[string]any
	mustJSON(t, traceFile, &events)
	if len(events) == 0 {
		t.Fatal("empty Chrome trace")
	}
	var metrics map[string]any
	mustJSON(t, metricsFile, &metrics)
	if _, ok := metrics["counters"]; !ok {
		t.Fatalf("metrics JSON has no counters: %v", metrics)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestSearchObservability checks -metrics and -trace-out on the search
// binary: the metrics must include the memo counters and a convergence
// series, and the trace must be valid Chrome JSON.
func TestSearchObservability(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.json")
	metricsFile := filepath.Join(dir, "metrics.json")
	out := run(t, "mheta-search", "-app", "jacobi", "-config", "HY1", "-scale", "test",
		"-alg", "gbs", "-parallel", "2", "-verify", "-trace-out", traceFile, "-metrics", metricsFile)
	if !strings.Contains(out, "gbs") || !strings.Contains(out, "verify") {
		t.Fatalf("search output:\n%s", out)
	}
	raw, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"search.memo.hits", "search.memo.misses", "search.gbs.best", "search.pool.worker.01.evals"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q:\n%s", want, raw)
		}
	}
	var events []map[string]any
	mustJSON(t, traceFile, &events)
	if len(events) == 0 {
		t.Fatal("empty Chrome trace")
	}
}

// mustJSON decodes a file or fails the test.
func mustJSON(t *testing.T, path string, into any) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
}

// TestExperiments covers the static table and one figure rendering.
func TestExperiments(t *testing.T) {
	out := run(t, "mheta-experiments", "-scale", "test", "-which", "table1")
	if !strings.Contains(out, "DC") || !strings.Contains(out, "HY2") {
		t.Fatalf("table1 output:\n%s", out)
	}
	out = run(t, "mheta-experiments", "-scale", "test", "-which", "fig8")
	if !strings.Contains(out, "I-C/Bal") {
		t.Fatalf("fig8 output:\n%s", out)
	}
}
