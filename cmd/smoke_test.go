// Smoke tests for the command-line binaries: each must build, print
// usage on -h, and complete one tiny end-to-end invocation at -scale
// test. These guard the flag surface and the wiring from flags to the
// library — the numerical behaviour behind them is covered by the unit,
// validation, and golden suites.
package cmd_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binDir holds the binaries built once in TestMain.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mheta-smoke-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	// Building from the package directory, ./... covers exactly the
	// cmd/ mains.
	out, err := exec.Command("go", "build", "-o", dir, "./...").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "go build ./cmd/...: %v\n%s", err, out)
		os.Exit(1)
	}
	binDir = dir
	os.Exit(m.Run())
}

// run executes one of the built binaries and returns its combined output,
// failing the test on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(binDir, bin), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestHelp asserts every binary exits cleanly on -h (the flag package
// treats an explicit help request as success) and documents its flags.
func TestHelp(t *testing.T) {
	for bin, flag := range map[string]string{
		"mheta-predict":     "-params",
		"mheta-emulate":     "-app",
		"mheta-search":      "-alg",
		"mheta-experiments": "-which",
		"mheta-lint":        "maporder",
	} {
		out, err := exec.Command(filepath.Join(binDir, bin), "-h").CombinedOutput()
		if err != nil {
			t.Errorf("%s -h: %v", bin, err)
		}
		if !strings.Contains(string(out), flag) {
			t.Errorf("%s -h output does not mention %s:\n%s", bin, flag, out)
		}
	}
}

// TestPredictCollect exercises the paper's two-step pipeline: -collect
// writes a parameter file, a second invocation loads it and predicts.
func TestPredictCollect(t *testing.T) {
	params := filepath.Join(t.TempDir(), "params.json")
	out := run(t, "mheta-predict", "-params", params, "-collect", "jacobi:DC", "-scale", "test")
	if !strings.Contains(out, "collected parameters") {
		t.Fatalf("collect output:\n%s", out)
	}
	out = run(t, "mheta-predict", "-params", params, "-detailed")
	for _, want := range []string{"program:", "jacobi", "per iteration:", "node times"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q:\n%s", want, out)
		}
	}
}

// TestEmulate runs one predicted-vs-actual row plus a 1-step spectrum
// sweep.
func TestEmulate(t *testing.T) {
	out := run(t, "mheta-emulate", "-app", "jacobi", "-config", "DC", "-scale", "test")
	if !strings.Contains(out, "actual(s)") || !strings.Contains(out, "given") {
		t.Fatalf("emulate output:\n%s", out)
	}
	out = run(t, "mheta-emulate", "-app", "lanczos", "-config", "HY1", "-scale", "test", "-spectrum", "1")
	if !strings.Contains(out, "I-C/Bal") {
		t.Fatalf("spectrum output missing anchor label:\n%s", out)
	}
}

// TestSearch runs the cheapest search on the tiny scale and verifies the
// found distribution on the emulator.
func TestSearch(t *testing.T) {
	out := run(t, "mheta-search", "-app", "jacobi", "-config", "HY1", "-scale", "test", "-alg", "gbs", "-verify")
	for _, want := range []string{"blk", "gbs", "verify"} {
		if !strings.Contains(out, want) {
			t.Errorf("search output missing %q:\n%s", want, out)
		}
	}
}

// writeBadModule lays out a throwaway module containing one deliberate
// determinism violation (a //lint:deterministic file calling time.Now),
// the known-bad input the lint smoke tests run against.
func writeBadModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module badmod\n\ngo 1.22\n",
		"bad.go": `//lint:deterministic
package badmod

import "time"

// Stamp reads the wall clock inside the deterministic contract.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLintClean asserts the linter passes over this repository — the
// contracts it enforces must hold on the tree that ships it.
func TestLintClean(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "mheta-lint"), "./...")
	cmd.Dir = ".." // repo root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("mheta-lint ./... on the repo: %v\n%s", err, out)
	}
}

// TestLintKnownBad asserts the linter exits non-zero (specifically 2,
// vet's findings code) on a module with a planted violation, in both
// standalone and `go vet -vettool` modes.
func TestLintKnownBad(t *testing.T) {
	bad := writeBadModule(t)
	lint := filepath.Join(binDir, "mheta-lint")

	cmd := exec.Command(lint, "./...")
	cmd.Dir = bad
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("standalone on bad module: err=%v (want exit 2)\n%s", err, out)
	}
	if !strings.Contains(string(out), "nondeterminism") || !strings.Contains(string(out), "time.Now") {
		t.Errorf("finding not reported:\n%s", out)
	}

	cmd = exec.Command("go", "vet", "-vettool="+lint, "./...")
	cmd.Dir = bad
	out, err = cmd.CombinedOutput()
	if !errors.As(err, &exit) {
		t.Fatalf("go vet -vettool on bad module succeeded; want failure\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now") {
		t.Errorf("vettool finding not reported:\n%s", out)
	}
}

// TestExperiments covers the static table and one figure rendering.
func TestExperiments(t *testing.T) {
	out := run(t, "mheta-experiments", "-scale", "test", "-which", "table1")
	if !strings.Contains(out, "DC") || !strings.Contains(out, "HY2") {
		t.Fatalf("table1 output:\n%s", out)
	}
	out = run(t, "mheta-experiments", "-scale", "test", "-which", "fig8")
	if !strings.Contains(out, "I-C/Bal") {
		t.Fatalf("fig8 output:\n%s", out)
	}
}
