// Differential tests for mheta-serve: the server's wire values must
// match what the mheta-predict and mheta-search binaries print for the
// same scenario — rendered through the CLIs' own format strings, so a
// single changed bit breaks the comparison. The server process is
// started on a free port and torn down via SIGINT, which also exercises
// the binary's graceful-shutdown path end to end.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// serveProc is one running mheta-serve process.
type serveProc struct {
	base   string // http://host:port
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	lines  chan string
}

// startServe launches mheta-serve on a free port and waits for its
// listening line. Stop it with p.stop(t).
func startServe(t *testing.T, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{stderr: &bytes.Buffer{}, lines: make(chan string, 64)}
	p.cmd = exec.Command(filepath.Join(binDir, "mheta-serve"),
		append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	pipe, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			p.stderr.WriteString(sc.Text() + "\n")
			select {
			case p.lines <- sc.Text():
			default:
			}
		}
		close(p.lines)
	}()
	deadline := time.After(30 * time.Second)
	for p.base == "" {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("mheta-serve exited before listening:\n%s", p.stderr)
			}
			if _, after, found := strings.Cut(line, "listening on "); found {
				p.base = strings.TrimSpace(after)
			}
		case <-deadline:
			p.cmd.Process.Kill()
			t.Fatalf("mheta-serve did not report a listening address:\n%s", p.stderr)
		}
	}
	return p
}

// stop interrupts the server and asserts a clean, drained exit.
func (p *serveProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("mheta-serve exit: %v\n%s", err, p.stderr)
	}
	if !strings.Contains(p.stderr.String(), "drained") {
		t.Errorf("mheta-serve did not report a drain:\n%s", p.stderr)
	}
}

// post sends a JSON body and returns status and response bytes.
func (p *serveProc) post(t *testing.T, path string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// serveScenario is the wire scenario both differential tests use.
var serveScenario = map[string]any{"app": "jacobi", "config": "HY1", "scale": "test"}

// TestServeDifferentialPredict pins POST /predict against mheta-predict:
// the server's numbers, rendered with the CLI's own format strings, must
// appear verbatim in the CLI output for the same scenario.
func TestServeDifferentialPredict(t *testing.T) {
	params := filepath.Join(t.TempDir(), "params.json")
	run(t, "mheta-predict", "-params", params, "-collect", "jacobi:HY1", "-scale", "test")
	cli := run(t, "mheta-predict", "-params", params, "-detailed")

	p := startServe(t)
	defer p.stop(t)

	req := map[string]any{"detailed": true}
	for k, v := range serveScenario {
		req[k] = v
	}
	code, data := p.post(t, "/predict", req)
	if code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", code, data)
	}
	var resp struct {
		Program       string    `json:"program"`
		Dist          []int     `json:"dist"`
		Iterations    int       `json:"iterations"`
		TotalS        float64   `json:"total_s"`
		PerIterationS float64   `json:"per_iteration_s"`
		NodeTimesS    []float64 `json:"node_times_s"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("predict response %s: %v", data, err)
	}

	// Render the server's values exactly as mheta-predict prints its
	// own; any numerical difference breaks the substring match.
	nodeTimes := "node times (s): "
	for _, tt := range resp.NodeTimesS {
		nodeTimes += fmt.Sprintf("%8.4f", tt)
	}
	for _, want := range []string{
		fmt.Sprintf("program:        %s", resp.Program),
		fmt.Sprintf("distribution:   %v", resp.Dist),
		fmt.Sprintf("per iteration:  %.6fs", resp.PerIterationS),
		fmt.Sprintf("total (%d it):  %.6fs", resp.Iterations, resp.TotalS),
		nodeTimes,
	} {
		if !strings.Contains(cli, want) {
			t.Errorf("CLI output missing server-rendered line %q:\n%s", want, cli)
		}
	}
}

// TestServeDifferentialSearch pins POST /search against mheta-search the
// same way: the result row and the blk baseline row, rendered with the
// CLI's format, must appear verbatim in the CLI output.
func TestServeDifferentialSearch(t *testing.T) {
	cli := run(t, "mheta-search", "-app", "jacobi", "-config", "HY1", "-scale", "test", "-alg", "gbs")

	p := startServe(t)
	defer p.stop(t)

	req := map[string]any{"alg": "gbs"}
	for k, v := range serveScenario {
		req[k] = v
	}
	code, data := p.post(t, "/search", req)
	if code != http.StatusOK {
		t.Fatalf("search: status %d: %s", code, data)
	}
	var resp struct {
		Algorithm   string  `json:"algorithm"`
		TimeS       float64 `json:"time_s"`
		Evaluations int     `json:"evaluations"`
		Best        []int   `json:"best"`
		Blk         []int   `json:"blk"`
		BlkTimeS    float64 `json:"blk_time_s"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("search response %s: %v", data, err)
	}
	for _, want := range []string{
		fmt.Sprintf("%-10s %10.3f %8s  %v", "blk", resp.BlkTimeS, "-", resp.Blk),
		fmt.Sprintf("%-10s %10.3f %8d  %v", resp.Algorithm, resp.TimeS, resp.Evaluations, resp.Best),
	} {
		if !strings.Contains(cli, want) {
			t.Errorf("CLI output missing server-rendered row %q:\n%s", want, cli)
		}
	}
}

// TestServeMetricsAndErrors covers the remaining binary surface in one
// server: live /metrics content, 400 on a malformed scenario, and 404
// off the route table.
func TestServeMetricsAndErrors(t *testing.T) {
	p := startServe(t)
	defer p.stop(t)

	if code, data := p.post(t, "/predict", serveScenario); code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", code, data)
	}
	if code, data := p.post(t, "/predict", map[string]any{"app": "nope", "config": "HY1"}); code != http.StatusBadRequest {
		t.Errorf("bad app: status %d (%s), want 400", code, data)
	}

	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"serve.predict.requests", "serve.engines.built", "search.memo.misses"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q:\n%s", want, data)
		}
	}

	resp, err = http.Get(p.base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", resp.StatusCode)
	}
}

// TestServeFlagRejection pins the usage-error exits on the server's
// sizing flags, matching the other binaries' exit-2 convention.
func TestServeFlagRejection(t *testing.T) {
	runExpectUsage(t, "mheta-serve", []string{"-workers"}, "-workers", "0")
	runExpectUsage(t, "mheta-serve", []string{"-queue-depth"}, "-queue-depth", "-1")
	runExpectUsage(t, "mheta-serve", []string{"-max-searches"}, "-max-searches", "0")
	runExpectUsage(t, "mheta-serve", []string{"-drain"}, "-drain", "-1s")
}
