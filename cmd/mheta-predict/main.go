// mheta-predict evaluates MHETA for a candidate distribution against a
// saved parameter file.
//
// Usage:
//
//	mheta-predict -params jacobi-hy1.json -dist 512,512,640,640,384,384,512,512
//	mheta-predict -params jacobi-hy1.json -collect jacobi:HY1   # produce the file first
//
// The -collect form runs the micro-benchmarks and the instrumented
// iteration for a named app:config pair and writes the parameter file, so
// the two invocations together reproduce the paper's pipeline end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"mheta"
	"mheta/cmd/internal/cliutil"
	"mheta/internal/core"
	"mheta/internal/dist"
	"mheta/internal/experiments"
	"mheta/internal/paramfile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-predict: ")
	paramsPath := flag.String("params", "", "parameter file (JSON, see internal/paramfile)")
	distStr := flag.String("dist", "", "comma-separated GEN_BLOCK distribution (elements per node)")
	collect := flag.String("collect", "", "collect parameters for app:config (apps: jacobi, jacobi-pf, cg, lanczos, rna, multigrid; configs: DC, IO, HY1, HY2) and write them to -params")
	scaleFlag := flag.String("scale", "paper", "dataset scale for -collect: paper, quick or test")
	seed := flag.Uint64("seed", 42, "noise seed for -collect")
	detailed := flag.Bool("detailed", false, "print per-node and per-section breakdown")
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	scale := cliutil.ParseScale(*scaleFlag)
	if *paramsPath == "" {
		cliutil.Usagef("-params is required")
	}
	reg := obsFlags.Start()
	defer obsFlags.Finish()

	if *collect != "" {
		parts := strings.SplitN(*collect, ":", 2)
		if len(parts) != 2 {
			cliutil.Usagef("-collect wants app:config, got %q", *collect)
		}
		app, err := buildApp(parts[0], scale)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := mheta.NamedCluster(parts[1])
		if err != nil {
			log.Fatal(err)
		}
		params, err := mheta.InstrumentParams(spec, app, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if err := paramfile.Save(*paramsPath, &params); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("collected parameters for %s on %s -> %s\n", parts[0], parts[1], *paramsPath)
		if *distStr == "" {
			return
		}
	}

	params, err := paramfile.Load(*paramsPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.NewModel(params)
	if err != nil {
		log.Fatal(err)
	}

	var d dist.Distribution
	if *distStr == "" {
		d = dist.Block(totalOf(params), params.Nodes)
		fmt.Printf("no -dist given; using Blk %v\n", d)
	} else {
		for _, f := range strings.Split(*distStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("bad -dist entry %q: %v", f, err)
			}
			d = append(d, v)
		}
		if len(d) != params.Nodes {
			log.Fatalf("-dist has %d entries; parameter file describes %d nodes", len(d), params.Nodes)
		}
	}

	pred := model.PredictDetailed(d)
	if reg != nil {
		reg.Counter("predict.predictions").Inc()
		reg.Gauge("predict.total_s").Set(pred.Total)
		reg.Gauge("predict.per_iteration_s").Set(pred.PerIteration)
	}
	fmt.Printf("program:        %s\n", params.Program)
	fmt.Printf("distribution:   %v\n", d)
	fmt.Printf("per iteration:  %.6fs\n", pred.PerIteration)
	fmt.Printf("total (%d it):  %.6fs\n", params.Iterations, pred.Total)
	if *detailed {
		fmt.Printf("node times (s): ")
		for _, t := range pred.NodeTimes {
			fmt.Printf("%8.4f", t)
		}
		fmt.Println()
		for si, row := range pred.SectionTimes {
			fmt.Printf("after section %d (%s): ", si, params.Sections[si].Name)
			for _, t := range row {
				fmt.Printf("%8.4f", t)
			}
			fmt.Println()
		}
	}
}

func totalOf(p core.Params) int {
	t := 0
	for _, b := range p.BaseDist {
		t += b
	}
	return t
}

func buildApp(name string, sc experiments.Scale) (*mheta.App, error) {
	b, err := experiments.BuilderByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(sc), nil
}
