// mheta-search finds an efficient data distribution for an application on
// a heterogeneous cluster using MHETA as the evaluation function — the
// role the model plays inside the paper's runtime system (§1, §5.3).
//
// Usage:
//
//	mheta-search -app jacobi -config HY1 -alg gbs
//	mheta-search -app lanczos -config HY2 -alg all -verify
//	mheta-search -app rna -config HY2 -alg genetic -parallel 0
package main

import (
	"flag"
	"fmt"
	"log"

	"mheta"
	"mheta/internal/experiments"
	"mheta/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-search: ")
	appName := flag.String("app", "jacobi", "application: jacobi, jacobi-pf, cg, lanczos, rna, multigrid")
	scaleFlag := flag.String("scale", "paper", "dataset scale: paper, quick or test")
	configName := flag.String("config", "HY1", "cluster configuration: DC, IO, HY1, HY2")
	alg := flag.String("alg", "gbs", "algorithm: gbs, genetic, annealing, random, all")
	verify := flag.Bool("verify", false, "run the found distribution on the emulator and report the actual time")
	seed := flag.Uint64("seed", 42, "noise seed")
	parallel := flag.Int("parallel", 1, "evaluation workers per search (0 = all cores); results are identical for any worker count")
	flag.Parse()

	app, err := buildApp(*appName, *scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := mheta.NamedCluster(*configName)
	if err != nil {
		log.Fatal(err)
	}
	model, err := mheta.Instrument(spec, app, *seed)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	algs := []string{*alg}
	if *alg == "all" {
		algs = []string{mheta.AlgGBS, mheta.AlgGenetic, mheta.AlgAnnealing, mheta.AlgRandom}
	}

	blk := mheta.BlockDistribution(app, spec)
	blkPred := model.Predict(blk).Total
	fmt.Printf("%-10s %10s %8s  %s\n", "algorithm", "pred(s)", "evals", "distribution")
	fmt.Printf("%-10s %10.3f %8s  %v\n", "blk", blkPred, "-", blk)
	for _, a := range algs {
		res, err := mheta.SearchWithWorkers(a, spec, app, model, *seed, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %8d  %v\n", res.Algorithm, res.Time, res.Evaluations, res.Best)
		if *verify {
			actual, err := mheta.RunActual(spec, app, res.Best, *seed^0xACDC)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %10.3f actual (model diff %.2f%%)\n", "  verify", actual,
				stats.PercentDiff(res.Time, actual)*100)
		}
	}
}

func buildApp(name, scale string) (*mheta.App, error) {
	sc, err := experiments.ParseScale(scale)
	if err != nil {
		return nil, err
	}
	b, err := experiments.BuilderByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(sc), nil
}
