// mheta-search finds an efficient data distribution for an application on
// a heterogeneous cluster using MHETA as the evaluation function — the
// role the model plays inside the paper's runtime system (§1, §5.3).
//
// Usage:
//
//	mheta-search -app jacobi -config HY1 -alg gbs
//	mheta-search -app lanczos -config HY2 -alg all -verify
//	mheta-search -app rna -config HY2 -alg genetic -parallel 4 -metrics m.json
//	mheta-search -app jacobi -config IO -alg gbs -verify -trace-out run.json
//
// -metrics records the memo hit/miss counters, pool utilization and the
// per-algorithm convergence series; -trace-out (single -alg, with
// -verify) writes the verification run's timeline as Chrome trace-event
// JSON for Perfetto.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mheta"
	"mheta/cmd/internal/cliutil"
	"mheta/internal/exec"
	"mheta/internal/experiments"
	"mheta/internal/mpi"
	"mheta/internal/stats"
	"mheta/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-search: ")
	appName := flag.String("app", "jacobi", "application: jacobi, jacobi-pf, cg, lanczos, rna, multigrid")
	scaleFlag := flag.String("scale", "paper", "dataset scale: paper, quick or test")
	configName := flag.String("config", "HY1", "cluster configuration: DC, IO, HY1, HY2")
	alg := flag.String("alg", "gbs", "algorithm: gbs, genetic, annealing, random, all")
	verify := flag.Bool("verify", false, "run the found distribution on the emulator and report the actual time")
	traceOut := flag.String("trace-out", "", "write the -verify run's timeline as Chrome trace-event JSON to this file (single -alg only)")
	seed := flag.Uint64("seed", 42, "noise seed")
	parallel := flag.Int("parallel", 1, "evaluation workers per search (>= 1); results are identical for any worker count")
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	scale := cliutil.ParseScale(*scaleFlag)
	workers := cliutil.ParseParallel(*parallel)
	if *traceOut != "" {
		if !*verify {
			cliutil.Usagef("-trace-out traces the verification run; add -verify")
		}
		if *alg == "all" {
			cliutil.Usagef("-trace-out needs a single -alg, not all")
		}
	}
	reg := obsFlags.Start()
	defer obsFlags.Finish()

	app, err := buildApp(*appName, scale)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := mheta.NamedCluster(*configName)
	if err != nil {
		log.Fatal(err)
	}
	model, err := mheta.Instrument(spec, app, *seed)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	algs := []string{*alg}
	if *alg == "all" {
		algs = []string{mheta.AlgGBS, mheta.AlgGenetic, mheta.AlgAnnealing, mheta.AlgRandom}
	}

	blk := mheta.BlockDistribution(app, spec)
	blkPred := model.Predict(blk).Total
	fmt.Printf("%-10s %10s %8s  %s\n", "algorithm", "pred(s)", "evals", "distribution")
	fmt.Printf("%-10s %10.3f %8s  %v\n", "blk", blkPred, "-", blk)
	for _, a := range algs {
		res, err := mheta.SearchWithOptions(a, spec, app, model, *seed,
			mheta.SearchOptions{Workers: workers, Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %8d  %v\n", res.Algorithm, res.Time, res.Evaluations, res.Best)
		if *verify {
			actual, err := runActual(spec, app, res.Best, *seed^0xACDC, *traceOut)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %10.3f actual (model diff %.2f%%)\n", "  verify", actual,
				stats.PercentDiff(res.Time, actual)*100)
		}
	}
}

// runActual emulates d, optionally writing the run's Chrome trace.
func runActual(spec mheta.ClusterSpec, app *mheta.App, d mheta.Distribution, seed uint64, traceOut string) (float64, error) {
	var tr *trace.Trace
	opts := exec.Options{}
	if traceOut != "" {
		tr = trace.New()
		opts.Trace = tr
	}
	w := mpi.NewWorld(spec, seed, mheta.DefaultNoise)
	res, err := exec.Run(w, app, d, opts)
	if err != nil {
		return 0, err
	}
	if tr != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return 0, fmt.Errorf("-trace-out: %w", err)
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return 0, fmt.Errorf("-trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return 0, fmt.Errorf("-trace-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "mheta-search: wrote Chrome trace to %s\n", traceOut)
	}
	return res.Time, nil
}

func buildApp(name string, sc experiments.Scale) (*mheta.App, error) {
	b, err := experiments.BuilderByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(sc), nil
}
