package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine(
		"BenchmarkSearchGBS-8  \t  14402\t  82324 ns/op\t  45.00 evals\t  546700 cands/s\t  1234 B/op\t  5 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if name != "BenchmarkSearchGBS" {
		t.Errorf("name = %q", name)
	}
	if res.NsPerOp != 82324 || res.BytesPerOp != 1234 || res.AllocsPerOp != 5 {
		t.Errorf("densities = %+v", res)
	}
	if res.Metrics["evals"] != 45 || res.Metrics["cands/s"] != 546700 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
}

func TestParseBenchLineSubBenchmark(t *testing.T) {
	name, res, ok := parseBenchLine(
		"BenchmarkSearchParallel/gbs/workers=1-16         	     100	  90000 ns/op	 1.00 speedup-vs-serial")
	if !ok || name != "BenchmarkSearchParallel/gbs/workers=1" {
		t.Fatalf("name = %q ok = %v", name, ok)
	}
	if res.NsPerOp != 90000 {
		t.Errorf("ns/op = %v", res.NsPerOp)
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  	mheta	42.1s",
		"PASS",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"goos: linux",
		"BenchmarkNoNs-8 100 5.0 widgets",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestScanEventsKeepsMinimum(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Output":"BenchmarkX-8 100 2000 ns/op\n"}`,
		`{"Action":"output","Output":"BenchmarkX-8 100 1000 ns/op\n"}`,
		`{"Action":"output","Output":"BenchmarkX-8 100 3000 ns/op"}`,
		`{"Action":"run","Test":"BenchmarkX"}`,
		"not json at all",
	}, "\n")
	res, err := parseEvents(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkX"].NsPerOp; got != 1000 {
		t.Errorf("kept %v ns/op, want the 1000 minimum", got)
	}
}

// TestScanEventsReassemblesSplitLines covers test2json's flush behaviour:
// the benchmark name and its timing arrive in separate Output events, with
// unrelated tests' output interleaved between them.
func TestScanEventsReassemblesSplitLines(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Test":"BenchmarkY","Output":"BenchmarkY    \t"}`,
		`{"Action":"output","Test":"BenchmarkZ","Output":"BenchmarkZ-4 50 7000 ns/op\n"}`,
		`{"Action":"output","Test":"BenchmarkY","Output":"  141955\t       918.4 ns/op\t      64 B/op\t       1 allocs/op\n"}`,
	}, "\n")
	res, err := parseEvents(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkY"].NsPerOp; got != 918.4 {
		t.Errorf("BenchmarkY ns/op = %v, want 918.4", got)
	}
	if got := res["BenchmarkY"].AllocsPerOp; got != 1 {
		t.Errorf("BenchmarkY allocs/op = %v, want 1", got)
	}
	if got := res["BenchmarkZ"].NsPerOp; got != 7000 {
		t.Errorf("BenchmarkZ ns/op = %v, want 7000", got)
	}
}

func TestCompareGating(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkSearchGBS":     {NsPerOp: 1000, Metrics: map[string]float64{"cands/s": 100}},
		"BenchmarkSearchSlow":    {NsPerOp: 1000},
		"BenchmarkSearchAllocs":  {NsPerOp: 1000, AllocsPerOp: 2},
		"BenchmarkModelEvaluate": {NsPerOp: 1000},
		"BenchmarkGone":          {NsPerOp: 1},
	}}
	cur := map[string]Result{
		"BenchmarkSearchGBS":     {NsPerOp: 200, Metrics: map[string]float64{"cands/s": 600}}, // improved
		"BenchmarkSearchSlow":    {NsPerOp: 1600},                                             // ns regression
		"BenchmarkSearchAllocs":  {NsPerOp: 1000, AllocsPerOp: 3},                             // alloc regression
		"BenchmarkModelEvaluate": {NsPerOp: 9000},                                             // ungated: info only
		"BenchmarkDeltaEvaluate": {NsPerOp: 50},                                               // new
	}
	gate := regexp.MustCompile("^BenchmarkSearch")
	rep := compare(base, cur, gate, 1.5, nil)
	if rep.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2\n%+v", rep.Regressions, rep.Rows)
	}
	status := make(map[string]string)
	for _, r := range rep.Rows {
		status[r.Name] = r.Status
	}
	want := map[string]string{
		"BenchmarkSearchGBS":     "ok",
		"BenchmarkSearchSlow":    "regression",
		"BenchmarkSearchAllocs":  "regression",
		"BenchmarkModelEvaluate": "info",
		"BenchmarkDeltaEvaluate": "new",
		"BenchmarkGone":          "missing",
	}
	for n, w := range want {
		if status[n] != w {
			t.Errorf("%s: status %q, want %q", n, status[n], w)
		}
	}
	// Metric notes surface the cands/s trajectory.
	for _, r := range rep.Rows {
		if r.Name == "BenchmarkSearchGBS" && !strings.Contains(r.MetricNotes, "cands/s") {
			t.Errorf("missing cands/s note: %+v", r)
		}
	}
}

// TestCompareAllocSlack pins the alloc-gate tolerance: exact at small
// counts (2→3 allocs is a regression) but absorbing per-run noise of a
// few allocations once the count is ~10^6, where runtime-internal
// allocations leak into the per-op average.
func TestCompareAllocSlack(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkSearchSmall": {NsPerOp: 1000, AllocsPerOp: 2},
		"BenchmarkSearchBig":   {NsPerOp: 1000, AllocsPerOp: 1_000_000},
	}}
	cur := map[string]Result{
		"BenchmarkSearchSmall": {NsPerOp: 1000, AllocsPerOp: 3},
		"BenchmarkSearchBig":   {NsPerOp: 1000, AllocsPerOp: 1_000_005},
	}
	gate := regexp.MustCompile("^BenchmarkSearch")
	rep := compare(base, cur, gate, 1.5, nil)
	status := make(map[string]string)
	for _, r := range rep.Rows {
		status[r.Name] = r.Status
	}
	if status["BenchmarkSearchSmall"] != "regression" {
		t.Errorf("2→3 allocs: status %q, want regression", status["BenchmarkSearchSmall"])
	}
	if status["BenchmarkSearchBig"] != "ok" {
		t.Errorf("1e6→1e6+5 allocs: status %q, want ok (within slack)", status["BenchmarkSearchBig"])
	}
	if rep.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", rep.Regressions)
	}
}

func TestParseFloors(t *testing.T) {
	floors, err := parseFloors("BenchmarkServePredict:req/s:1000, BenchmarkX:evals:5.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := floors["BenchmarkServePredict"]["req/s"]; got != 1000 {
		t.Errorf("req/s floor = %v, want 1000", got)
	}
	if got := floors["BenchmarkX"]["evals"]; got != 5.5 {
		t.Errorf("evals floor = %v, want 5.5", got)
	}
	if f, err := parseFloors(""); err != nil || len(f) != 0 {
		t.Errorf("empty spec: floors=%v err=%v, want none", f, err)
	}
	for _, bad := range []string{"nope", "a:b", "a:b:NaNope", ":m:1", "a::1"} {
		if _, err := parseFloors(bad); err == nil {
			t.Errorf("parseFloors(%q) accepted a malformed spec", bad)
		}
	}
}

// TestCompareMetricFloor pins the -min-metric gate: a floored benchmark
// fails when the metric is below the bar or absent, passes at or above
// it, and the floor binds even for benchmarks new to the baseline.
func TestCompareMetricFloor(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Result{
		"BenchmarkServePredict": {NsPerOp: 1000, Metrics: map[string]float64{"req/s": 2000}},
		"BenchmarkNoMetric":     {NsPerOp: 1000},
	}}
	cur := map[string]Result{
		"BenchmarkServePredict": {NsPerOp: 1100, Metrics: map[string]float64{"req/s": 750}},
		"BenchmarkNoMetric":     {NsPerOp: 1000},
		"BenchmarkFresh":        {NsPerOp: 10, Metrics: map[string]float64{"req/s": 1}},
	}
	floors := map[string]map[string]float64{
		"BenchmarkServePredict": {"req/s": 1000},
		"BenchmarkNoMetric":     {"req/s": 1},
		"BenchmarkFresh":        {"req/s": 100},
	}
	rep := compare(base, cur, regexp.MustCompile("^$"), 1.5, floors)
	if rep.Regressions != 3 {
		t.Fatalf("regressions = %d, want 3\n%+v", rep.Regressions, rep.Rows)
	}
	notes := make(map[string]string)
	for _, r := range rep.Rows {
		if r.Status == "regression" {
			notes[r.Name] = r.MetricNotes
		}
	}
	if !strings.Contains(notes["BenchmarkServePredict"], "below floor") {
		t.Errorf("ServePredict note %q does not explain the floor", notes["BenchmarkServePredict"])
	}
	if !strings.Contains(notes["BenchmarkNoMetric"], "missing") {
		t.Errorf("NoMetric note %q does not flag the absent metric", notes["BenchmarkNoMetric"])
	}
	if _, failed := notes["BenchmarkFresh"]; !failed {
		t.Error("new-to-baseline benchmark escaped its floor")
	}

	// At the bar exactly: passes.
	cur["BenchmarkServePredict"] = Result{NsPerOp: 1100, Metrics: map[string]float64{"req/s": 1000}}
	cur["BenchmarkNoMetric"] = Result{NsPerOp: 1000, Metrics: map[string]float64{"req/s": 1}}
	cur["BenchmarkFresh"] = Result{NsPerOp: 10, Metrics: map[string]float64{"req/s": 100}}
	if rep := compare(base, cur, regexp.MustCompile("^$"), 1.5, floors); rep.Regressions != 0 {
		t.Fatalf("at-floor run: regressions = %d, want 0\n%+v", rep.Regressions, rep.Rows)
	}
}
