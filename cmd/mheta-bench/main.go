// mheta-bench runs the repo's model/memo/search benchmark suite through
// `go test -bench -json`, distills each benchmark to ns/op, B/op,
// allocs/op and its custom metrics (evals, cands/s, ...), and either
// records the distilled results as a committed baseline
// (BENCH_BASELINE.json, written with -update) or compares a fresh run
// against that baseline.
//
// Compare mode gates the benchmarks matching -gate (the memo and search
// benchmarks by default): the run fails when ns/op regresses past
// -max-ns-ratio or allocs/op regresses at all. Benchmarks absent from
// the baseline are reported as "new" and never fail — committing the
// next baseline adopts them. The full comparison (including the
// ungated, information-only rows) can be written as a JSON report with
// -out for CI artifacts.
//
// The baseline is machine-specific (it records wall-clock densities);
// the committed file exists to pin the *trajectory* on CI's runner
// class, with a generous ratio gate absorbing runner noise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// defaultBench selects the micro benchmarks: model evaluation, memo,
// and search throughput. The experiment-replay benchmarks (Figure9*,
// SearchStudy, ...) run the emulator for minutes and measure accuracy,
// not speed; they stay out of the perf gate.
const defaultBench = "^Benchmark(ModelEvaluate|ModelEvaluatePipelined|" +
	"MemoisedEvaluate|MemoisedEvaluateObserved|MemoConcurrentBatches|" +
	"DeltaEvaluate|DeltaEvaluatePipelined|Emulate|ServePredict|" +
	"SearchGBS|SearchGenetic|SearchAnnealing|SearchRandom|SearchParallel)$"

// defaultGate guards the memo, search and emulator-scaling benchmarks —
// the ones whose performance this repo actively optimises and must not
// quietly lose. The HTTP serving benchmark stays out of the ns/allocs
// gate (net/http allocation counts drift across Go releases and load
// patterns); it is held to its throughput floor via -min-metric instead.
const defaultGate = "^Benchmark(Memoised|MemoConcurrentBatches|Search|Emulate)"

// defaultMinMetric pins absolute throughput floors: benchmarks that must
// not just avoid regressing relative to the baseline but must clear a
// hard bar. The server's acceptance bar is 1000 predict requests/s.
const defaultMinMetric = "BenchmarkServePredict:req/s:1000"

// allocSlack is the relative tolerance on allocs/op before a gated
// benchmark counts as a regression. Allocation counts are exact for
// small-footprint benchmarks (0.1% of 2 allocs rounds to nothing, so
// 2→3 still fails) but drift by a handful per run once a benchmark
// makes ~10^6 allocations per op — runtime-internal allocations leak
// into the per-op average at that scale.
const allocSlack = 0.001

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-bench: ")
	var (
		bench     = flag.String("bench", defaultBench, "go test -bench regexp selecting the benchmarks to run")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime per benchmark")
		count     = flag.Int("count", 1, "go test -count; with >1 the best (minimum ns/op) run of each benchmark is kept")
		pkg       = flag.String("pkg", ".", "package directory holding the benchmark suite")
		baseline  = flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -update)")
		update    = flag.Bool("update", false, "write the distilled results to -baseline instead of comparing")
		out       = flag.String("out", "", "write the comparison report as JSON to this file")
		gate      = flag.String("gate", defaultGate, "regexp selecting the benchmarks gated for regressions")
		maxRatio  = flag.Float64("max-ns-ratio", 1.5, "fail when a gated benchmark's ns/op exceeds baseline × ratio")
		minMetric = flag.String("min-metric", defaultMinMetric,
			"comma-separated name:metric:floor triplets; fail when the named benchmark's custom metric falls below the floor (empty disables)")
		fromStdin = flag.Bool("stdin", false, "parse `go test -json` events from stdin instead of running go test")
	)
	flag.Parse()

	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		log.Fatalf("bad -gate regexp: %v", err)
	}
	floors, err := parseFloors(*minMetric)
	if err != nil {
		log.Fatalf("bad -min-metric: %v", err)
	}

	var results map[string]Result
	if *fromStdin {
		results, err = parseEvents(os.Stdin)
	} else {
		results, err = runBenchmarks(*pkg, *bench, *benchtime, *count)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatalf("no benchmark results matched %q", *bench)
	}

	if *update {
		b := Baseline{
			Schema:     "mheta-bench/v1",
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Bench:      *bench,
			Benchtime:  *benchtime,
			Benchmarks: results,
		}
		if err := writeJSON(*baseline, b); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *baseline, len(results))
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		log.Fatalf("%v (record one with -update)", err)
	}
	rep := compare(base, results, gateRe, *maxRatio, floors)
	rep.Baseline = *baseline
	printReport(os.Stdout, rep)
	if *out != "" {
		if err := writeJSON(*out, rep); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Regressions > 0 {
		log.Fatalf("%d gated regression(s)", rep.Regressions)
	}
}

// Result is one benchmark distilled: the standard densities plus every
// custom b.ReportMetric value.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed BENCH_BASELINE.json schema.
type Baseline struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Bench      string            `json:"bench"`
	Benchtime  string            `json:"benchtime"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// runBenchmarks shells out to go test and distills its -json stream.
func runBenchmarks(pkg, bench, benchtime string, count int) (map[string]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-json", pkg}
	fmt.Printf("go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	results, parseErr := parseEvents(&stdout)
	if runErr != nil {
		return nil, fmt.Errorf("go test: %v\n%s%s", runErr, stderr.String(), tail(stdout.String(), 4096))
	}
	return results, parseErr
}

// tail returns at most the last n bytes of s (for error context).
func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "...\n" + s[len(s)-n:]
}

// testEvent is the subset of the test2json stream mheta-bench consumes.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// parseEvents reads a `go test -json` stream and distills the benchmark
// result lines. test2json flushes benchmark output at timing boundaries,
// so one result line ("BenchmarkX  \t" + "  141955\t  918.4 ns/op\n")
// arrives split across Output events; lines are reassembled per test
// before parsing. With -count > 1 the minimum ns/op run wins (benchmarks
// are noisy upward, not downward).
func parseEvents(r io.Reader) (map[string]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	results := make(map[string]Result)
	take := func(line string) {
		name, res, ok := parseBenchLine(line)
		if !ok {
			return
		}
		if prev, seen := results[name]; !seen || res.NsPerOp < prev.NsPerOp {
			results[name] = res
		}
	}
	partial := make(map[string]string) // test key -> unterminated line tail
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // non-JSON noise (e.g. build output passed through)
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		buf := partial[key] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			take(buf[:nl])
			buf = buf[nl+1:]
		}
		if buf == "" {
			delete(partial, key)
		} else {
			partial[key] = buf
		}
	}
	for _, buf := range partial {
		take(buf)
	}
	return results, sc.Err()
}

// parseBenchLine parses one `testing` benchmark result line, e.g.
//
//	BenchmarkSearchGBS-8  14402  82324 ns/op  45.00 evals  1234 B/op  5 allocs/op
//
// returning the name with the trailing -GOMAXPROCS suffix stripped.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", Result{}, false
	}
	res := Result{}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			sawNs = true
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	if !sawNs {
		return "", Result{}, false
	}
	return stripProcs(fields[0]), res, true
}

// stripProcs removes the -GOMAXPROCS suffix go test appends to every
// benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseFloors parses the -min-metric flag: comma-separated
// name:metric:floor triplets, e.g. "BenchmarkServePredict:req/s:1000".
// Metric names may themselves contain ':'-free slashes ("req/s"); the
// floor is everything after the last colon, the benchmark name before
// the first.
func parseFloors(spec string) (map[string]map[string]float64, error) {
	floors := make(map[string]map[string]float64)
	if strings.TrimSpace(spec) == "" {
		return floors, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("%q is not name:metric:floor", part)
		}
		cut := strings.LastIndex(rest, ":")
		if cut < 0 {
			return nil, fmt.Errorf("%q is not name:metric:floor", part)
		}
		metric, floorStr := rest[:cut], rest[cut+1:]
		floor, err := strconv.ParseFloat(floorStr, 64)
		if err != nil || name == "" || metric == "" {
			return nil, fmt.Errorf("%q is not name:metric:floor", part)
		}
		if floors[name] == nil {
			floors[name] = make(map[string]float64)
		}
		floors[name][metric] = floor
	}
	return floors, nil
}

// checkFloors fails the row when a floored metric is below its bar (or
// missing from the run entirely), returning the human-readable reasons.
func checkFloors(mins map[string]float64, c Result) []string {
	metrics := make([]string, 0, len(mins))
	for m := range mins {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	var bad []string
	for _, m := range metrics {
		v, ok := c.Metrics[m]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s missing (floor %.4g)", m, mins[m]))
		} else if v < mins[m] {
			bad = append(bad, fmt.Sprintf("%s %.4g < floor %.4g", m, v, mins[m]))
		}
	}
	return bad
}

// Report is the comparison between a run and the committed baseline.
type Report struct {
	Baseline    string      `json:"baseline"`
	Gate        string      `json:"gate"`
	MaxNsRatio  float64     `json:"max_ns_ratio"`
	Regressions int         `json:"regressions"`
	Rows        []ReportRow `json:"rows"`
}

// ReportRow is one benchmark's comparison.
type ReportRow struct {
	Name        string  `json:"name"`
	Status      string  `json:"status"` // ok | regression | new | missing | info
	Gated       bool    `json:"gated"`
	BaseNs      float64 `json:"base_ns_per_op,omitempty"`
	CurNs       float64 `json:"cur_ns_per_op,omitempty"`
	NsRatio     float64 `json:"ns_ratio,omitempty"`
	BaseAllocs  float64 `json:"base_allocs_per_op"`
	CurAllocs   float64 `json:"cur_allocs_per_op"`
	MetricNotes string  `json:"metric_notes,omitempty"`
}

// compare builds the report. Gated benchmarks fail on ns/op past
// maxRatio or any allocs/op growth; floored benchmarks additionally fail
// when a -min-metric bar is not cleared (the floor is absolute, so it
// applies even to benchmarks the baseline has not adopted yet);
// everything else is informational.
func compare(base Baseline, cur map[string]Result, gate *regexp.Regexp, maxRatio float64, floors map[string]map[string]float64) Report {
	rep := Report{Gate: gate.String(), MaxNsRatio: maxRatio}
	names := make([]string, 0, len(cur)+len(base.Benchmarks))
	for n := range cur {
		names = append(names, n)
	}
	for n := range base.Benchmarks {
		if _, ok := cur[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		c, haveCur := cur[n]
		b, haveBase := base.Benchmarks[n]
		row := ReportRow{Name: n, Gated: gate.MatchString(n)}
		switch {
		case !haveBase:
			row.Status = "new"
			row.CurNs, row.CurAllocs = c.NsPerOp, c.AllocsPerOp
		case !haveCur:
			row.Status = "missing"
			row.BaseNs, row.BaseAllocs = b.NsPerOp, b.AllocsPerOp
		default:
			row.BaseNs, row.CurNs = b.NsPerOp, c.NsPerOp
			row.BaseAllocs, row.CurAllocs = b.AllocsPerOp, c.AllocsPerOp
			if b.NsPerOp > 0 {
				row.NsRatio = c.NsPerOp / b.NsPerOp
			}
			row.MetricNotes = metricNotes(b, c)
			switch {
			case !row.Gated:
				row.Status = "info"
			case row.NsRatio > maxRatio || c.AllocsPerOp > b.AllocsPerOp*(1+allocSlack):
				row.Status = "regression"
				rep.Regressions++
			default:
				row.Status = "ok"
			}
		}
		if mins, ok := floors[n]; ok && haveCur {
			if bad := checkFloors(mins, c); len(bad) > 0 {
				if row.Status != "regression" {
					row.Status = "regression"
					rep.Regressions++
				}
				note := "below floor: " + strings.Join(bad, ", ")
				if row.MetricNotes != "" {
					note = row.MetricNotes + ", " + note
				}
				row.MetricNotes = note
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// metricNotes summarises shared custom metrics, e.g.
// "cands/s 5.5e+05→3.1e+06 (5.7x)".
func metricNotes(b, c Result) string {
	keys := make([]string, 0, len(c.Metrics))
	for k := range c.Metrics {
		if _, ok := b.Metrics[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		bv, cv := b.Metrics[k], c.Metrics[k]
		note := fmt.Sprintf("%s %.3g→%.3g", k, bv, cv)
		if bv > 0 {
			note += fmt.Sprintf(" (%.2fx)", cv/bv)
		}
		parts = append(parts, note)
	}
	return strings.Join(parts, ", ")
}

func printReport(w *os.File, rep Report) {
	fmt.Fprintf(w, "%-52s %-10s %12s %12s %7s %14s\n", "benchmark", "status", "base ns/op", "cur ns/op", "ratio", "allocs b→c")
	for _, r := range rep.Rows {
		gatedMark := " "
		if r.Gated {
			gatedMark = "*"
		}
		fmt.Fprintf(w, "%s%-51s %-10s %12.0f %12.0f %7.2f %6.0f→%-6.0f\n",
			gatedMark, r.Name, r.Status, r.BaseNs, r.CurNs, r.NsRatio, r.BaseAllocs, r.CurAllocs)
		if r.MetricNotes != "" {
			fmt.Fprintf(w, "    %s\n", r.MetricNotes)
		}
	}
	fmt.Fprintf(w, "gate %q, max ns ratio %.2f: %d regression(s)\n", rep.Gate, rep.MaxNsRatio, rep.Regressions)
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
