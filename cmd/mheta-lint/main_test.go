package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mheta/internal/analysis"
	"mheta/internal/analysis/lintkit"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// cleanModule builds a module no analyzer has findings on.
func cleanModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpclean\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a", "a.go"), `package a

func Add(x, y int) int { return x + y }
`)
	return dir
}

// dirtyModule builds a module with one leakcheck violation (an
// unterminated goroutine).
func dirtyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpdirty\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a", "a.go"), `package a

func Spin() {
	go func() {
		for {
		}
	}()
}
`)
	return dir
}

// brokenModule builds a module that cannot load (syntax error).
func brokenModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpbroken\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "a", "a.go"), "package a\n\nfunc Broken( {\n")
	return dir
}

// quietStdout routes the process stdout to /dev/null for the duration of
// a subtest, so table runs don't interleave findings into test output.
func quietStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

// The exit-code contract: 0 clean, 2 findings, 1 operational error —
// identical in text and JSON modes.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("loads temp modules with the full toolchain; skipped in -short")
	}
	clean := cleanModule(t)
	dirty := dirtyModule(t)
	broken := brokenModule(t)

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"which", []string{"-which"}, 0},
		{"clean-text", []string{"-C", clean, "./..."}, 0},
		{"clean-json", []string{"-json", "-C", clean, "./..."}, 0},
		{"findings-text", []string{"-C", dirty, "./..."}, 2},
		{"findings-json", []string{"-json", "-C", dirty, "./..."}, 2},
		{"loaderror-text", []string{"-C", broken, "./..."}, 1},
		{"loaderror-json", []string{"-json", "-C", broken, "./..."}, 1},
		{"badflag", []string{"-no-such-flag"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			quietStdout(t)
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// Worker count must not leak into output: merged findings are
// byte-identical across -parallel values and repeated runs.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a temp module with the full toolchain; skipped in -short")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmany\n\ngo 1.22\n")
	// Several packages with violations, so the pool genuinely interleaves
	// and every package contributes findings to the merge.
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		writeFile(t, filepath.Join(dir, p, p+".go"), fmt.Sprintf(`package %s

func Spin() {
	go func() {
		for {
		}
	}()
}

func Deaf(ch chan int) {
	ch <- 1
}
`, p))
	}
	pkgs, err := lintkit.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	render := func(fs []lintkit.Finding) string {
		out := ""
		for _, f := range fs {
			out += f.String() + "\n"
		}
		return out
	}
	var golden string
	for _, workers := range []int{1, 2, 3, 8} {
		for rep := 0; rep < 3; rep++ {
			findings, err := lintkit.RunAllN(analysis.All(), pkgs, workers)
			if err != nil {
				t.Fatalf("RunAllN(workers=%d): %v", workers, err)
			}
			if len(findings) == 0 {
				t.Fatal("expected findings from the planted violations")
			}
			got := render(findings)
			if golden == "" {
				golden = got
				continue
			}
			if got != golden {
				t.Errorf("workers=%d rep=%d: output differs from golden:\n got:\n%s\n want:\n%s", workers, rep, got, golden)
			}
		}
	}
}
