// mheta-lint machine-checks the repo's determinism, clone-safety, and
// concurrency contracts (DESIGN.md §5.9, §5.11, §5.14) with a suite of
// custom static analyzers:
//
//	maporder        order-sensitive accumulation in range-over-map
//	clonesafe       Clone methods must account for every mutable field
//	nondeterminism  wall clocks / global randomness in deterministic code
//	floatreduce     completion-order merging of parallel float results
//	units           dimensional consistency of the model's equations
//	guarded         //mheta:guardedby, //mheta:atomic and //mheta:locks
//	                discipline via lockset dataflow + lock ordering
//	leakcheck       goroutine termination paths, channel-send
//	                discipline, and context propagation in the
//	                serving stack
//
// It runs standalone over package patterns:
//
//	go run ./cmd/mheta-lint ./...
//
// or as a vet tool, which also covers test-variant builds:
//
//	go vet -vettool=$(which mheta-lint) ./...
//
// With -json, findings (including suppressed ones, marked) are emitted
// as a JSON array on stdout instead of the text lines.
//
// Packages are analyzed by a bounded worker pool (-parallel, default
// GOMAXPROCS); output order is byte-identical for every worker count.
// The total wall-time is reported on stderr.
//
// Exit status: 0 clean, 2 findings, 1 operational error — in both text
// and JSON modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mheta/internal/analysis"
	"mheta/internal/analysis/lintkit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes a vet tool before handing it package units:
	// -V=full asks for a version string to mix into build IDs, -flags for
	// the tool's flag definitions as JSON (none here — every analyzer is
	// always on). Answer both handshakes first.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("mheta-lint version devel comments-go-here buildID=devel\n")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("mheta-lint", flag.ContinueOnError)
	which := fs.Bool("which", false, "list registered analyzers (stable order) and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (includes suppressed findings, marked)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "package-analysis workers (output is identical for any value)")
	dir := fs.String("C", ".", "directory to load packages from (findings print relative to it)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mheta-lint [-which] [-json] [-parallel n] [-C dir] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Checks mheta's determinism and clone-safety contracts. Analyzers:\n\n")
		for _, a := range analysis.All() {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-15s %s\n", a.Name, summary)
		}
		fmt.Fprintf(fs.Output(), "\nAlso runs as a unit checker: go vet -vettool=$(which mheta-lint) ./...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 1
	}
	rest := fs.Args()

	if *which {
		for _, name := range analysis.Names() {
			fmt.Println(name)
		}
		return 0
	}

	// In -vettool mode the go command invokes the tool once per package
	// with a single *.cfg JSON argument.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lintkit.RunVet(os.Stderr, rest[0], analysis.All())
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	pkgs, err := lintkit.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings, err := lintkit.RunAllN(analysis.All(), pkgs, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "mheta-lint: %d package(s), %d analyzer(s), %d worker(s) in %s\n",
		len(pkgs), len(analysis.All()), *parallel, time.Since(start).Round(time.Millisecond))
	base, _ := filepath.Abs(*dir)
	relName := func(name string) string {
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	if *jsonOut {
		return emitJSON(findings, relName)
	}

	live := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		live++
		fmt.Printf("%s:%d:%d: %s (%s)\n", relName(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "mheta-lint: %d finding(s)\n", live)
		return 2
	}
	return 0
}

// jsonFinding is the machine-readable finding record -json emits. Unlike
// the text output it keeps suppressed findings, marked, so CI artifacts
// record what the //lint:ignore directives in the tree are hiding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func emitJSON(findings []lintkit.Finding, relName func(string) string) int {
	recs := make([]jsonFinding, 0, len(findings))
	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
		recs = append(recs, jsonFinding{
			File:       relName(f.Pos.Filename),
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "mheta-lint: %d finding(s)\n", live)
		return 2
	}
	return 0
}
