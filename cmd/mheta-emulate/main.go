// mheta-emulate runs a benchmark application on an emulated heterogeneous
// cluster and reports the actual (virtual) execution time next to MHETA's
// prediction — one row of Figures 10/11.
//
// Usage:
//
//	mheta-emulate -app jacobi -config HY1
//	mheta-emulate -app rna -config DC -dist 512,512,640,640,384,384,512,512
//	mheta-emulate -app cg -config IO -spectrum 3
//	mheta-emulate -app jacobi -config IO -trace-out run.json -metrics m.json
//
// -trace-out writes the single run's per-rank timeline as Chrome
// trace-event JSON; load it in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see sections, I/O and blocked time per rank.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mheta"
	"mheta/cmd/internal/cliutil"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/experiments"
	"mheta/internal/mpi"
	"mheta/internal/obs"
	"mheta/internal/stats"
	"mheta/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-emulate: ")
	appName := flag.String("app", "jacobi", "application: jacobi, jacobi-pf, cg, lanczos, rna, multigrid")
	scaleFlag := flag.String("scale", "paper", "dataset scale: paper, quick or test")
	configName := flag.String("config", "HY1", "cluster configuration: DC, IO, HY1, HY2")
	distStr := flag.String("dist", "", "explicit distribution (comma separated); default Blk")
	spectrum := flag.Int("spectrum", 0, "sweep the Figure 8 spectrum with this many steps per leg instead of a single run")
	gantt := flag.Int("gantt", 0, "render a per-rank timeline of this width after a single run (0 disables)")
	traceOut := flag.String("trace-out", "", "write the single run's timeline as Chrome trace-event JSON to this file (view in Perfetto)")
	seed := flag.Uint64("seed", 42, "noise seed")
	engineStr := flag.String("engine", "event", "emulation engine: event (scales to 10k+ ranks) or goroutine (reference core)")
	obsFlags := cliutil.RegisterObsFlags()
	flag.Parse()

	scale := cliutil.ParseScale(*scaleFlag)
	engine, err := exec.ParseEngine(*engineStr)
	if err != nil {
		cliutil.Usagef("-engine: %v", err)
	}
	exec.SetDefaultEngine(engine)
	if *traceOut != "" && *spectrum > 0 {
		cliutil.Usagef("-trace-out traces a single run; drop -spectrum")
	}
	reg := obsFlags.Start()
	defer obsFlags.Finish()

	app, err := buildApp(*appName, scale)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := mheta.NamedCluster(*configName)
	if err != nil {
		log.Fatal(err)
	}

	model, err := mheta.Instrument(spec, app, *seed)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	if *spectrum > 0 {
		var bpe int64
		for _, v := range app.Prog.DistributedVars() {
			bpe += v.ElemBytes
		}
		fmt.Printf("%-12s %10s %10s %8s\n", "position", "actual(s)", "pred(s)", "diff%")
		for _, pt := range dist.Spectrum(app.Prog.GlobalElems(), spec, bpe, *spectrum) {
			report(spec, app, model, pt.Dist, pt.Label, *seed, reg)
		}
		return
	}

	d := mheta.BlockDistribution(app, spec)
	if *distStr != "" {
		d = d[:0]
		for _, f := range strings.Split(*distStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("bad -dist entry %q: %v", f, err)
			}
			d = append(d, v)
		}
		if err := d.Validate(app.Prog.GlobalElems()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-12s %10s %10s %8s\n", "dist", "actual(s)", "pred(s)", "diff%")
	report(spec, app, model, d, "given", *seed, reg)

	if *gantt > 0 || *traceOut != "" {
		tr := trace.New()
		w := mpi.NewWorld(spec, *seed^0xACDC, mheta.DefaultNoise)
		if _, err := exec.Run(w, app, d, exec.Options{Trace: tr}); err != nil {
			log.Fatalf("trace run: %v", err)
		}
		if *gantt > 0 {
			fmt.Print(tr.Gantt(spec.N(), *gantt))
		}
		if *traceOut != "" {
			if err := writeChrome(tr, *traceOut); err != nil {
				log.Fatalf("-trace-out: %v", err)
			}
			fmt.Fprintf(os.Stderr, "mheta-emulate: wrote Chrome trace to %s\n", *traceOut)
		}
		if reg != nil {
			reg.Counter("emulate.trace.spans").Add(int64(len(tr.Spans())))
			for _, st := range tr.Stats(spec.N()) {
				reg.Gauge(fmt.Sprintf("emulate.rank.%02d.blocked_s", st.Rank)).Set(float64(st.Blocked))
			}
			fmt.Fprint(os.Stderr, tr.SummaryTable(spec.N()))
		}
	}
}

func writeChrome(tr *trace.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func report(spec mheta.ClusterSpec, app *mheta.App, model *mheta.Model, d mheta.Distribution, label string, seed uint64, reg *obs.Registry) {
	actual, err := mheta.RunActual(spec, app, d, seed^0xACDC)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	pred := model.Predict(d)
	if label == "" {
		label = "·"
	}
	fmt.Printf("%-12s %10.3f %10.3f %8.2f\n", label, actual, pred.Total,
		stats.PercentDiff(pred.Total, actual)*100)
	if reg != nil {
		reg.Counter("emulate.runs").Inc()
		reg.Gauge("emulate.actual_s").Set(actual)
		reg.Gauge("emulate.pred_s").Set(pred.Total)
		reg.Histogram("emulate.diff_pct", []float64{1, 2, 5, 10, 25}).
			Observe(stats.PercentDiff(pred.Total, actual) * 100)
	}
}

func buildApp(name string, sc experiments.Scale) (*mheta.App, error) {
	b, err := experiments.BuilderByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(sc), nil
}
