// mheta-emulate runs a benchmark application on an emulated heterogeneous
// cluster and reports the actual (virtual) execution time next to MHETA's
// prediction — one row of Figures 10/11.
//
// Usage:
//
//	mheta-emulate -app jacobi -config HY1
//	mheta-emulate -app rna -config DC -dist 512,512,640,640,384,384,512,512
//	mheta-emulate -app cg -config IO -spectrum 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"mheta"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/experiments"
	"mheta/internal/mpi"
	"mheta/internal/stats"
	"mheta/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mheta-emulate: ")
	appName := flag.String("app", "jacobi", "application: jacobi, jacobi-pf, cg, lanczos, rna, multigrid")
	scaleFlag := flag.String("scale", "paper", "dataset scale: paper, quick or test")
	configName := flag.String("config", "HY1", "cluster configuration: DC, IO, HY1, HY2")
	distStr := flag.String("dist", "", "explicit distribution (comma separated); default Blk")
	spectrum := flag.Int("spectrum", 0, "sweep the Figure 8 spectrum with this many steps per leg instead of a single run")
	gantt := flag.Int("gantt", 0, "render a per-rank timeline of this width after a single run (0 disables)")
	seed := flag.Uint64("seed", 42, "noise seed")
	flag.Parse()

	app, err := buildApp(*appName, *scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := mheta.NamedCluster(*configName)
	if err != nil {
		log.Fatal(err)
	}

	model, err := mheta.Instrument(spec, app, *seed)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	if *spectrum > 0 {
		var bpe int64
		for _, v := range app.Prog.DistributedVars() {
			bpe += v.ElemBytes
		}
		fmt.Printf("%-12s %10s %10s %8s\n", "position", "actual(s)", "pred(s)", "diff%")
		for _, pt := range dist.Spectrum(app.Prog.GlobalElems(), spec, bpe, *spectrum) {
			report(spec, app, model, pt.Dist, pt.Label, *seed)
		}
		return
	}

	d := mheta.BlockDistribution(app, spec)
	if *distStr != "" {
		d = d[:0]
		for _, f := range strings.Split(*distStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("bad -dist entry %q: %v", f, err)
			}
			d = append(d, v)
		}
		if err := d.Validate(app.Prog.GlobalElems()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-12s %10s %10s %8s\n", "dist", "actual(s)", "pred(s)", "diff%")
	report(spec, app, model, d, "given", *seed)

	if *gantt > 0 {
		tr := trace.New()
		w := mpi.NewWorld(spec, *seed^0xACDC, mheta.DefaultNoise)
		if _, err := exec.Run(w, app, d, exec.Options{Trace: tr}); err != nil {
			log.Fatalf("trace run: %v", err)
		}
		fmt.Print(tr.Gantt(spec.N(), *gantt))
	}
}

func report(spec mheta.ClusterSpec, app *mheta.App, model *mheta.Model, d mheta.Distribution, label string, seed uint64) {
	actual, err := mheta.RunActual(spec, app, d, seed^0xACDC)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	pred := model.Predict(d)
	if label == "" {
		label = "·"
	}
	fmt.Printf("%-12s %10.3f %10.3f %8.2f\n", label, actual, pred.Total,
		stats.PercentDiff(pred.Total, actual)*100)
}

func buildApp(name, scale string) (*mheta.App, error) {
	sc, err := experiments.ParseScale(scale)
	if err != nil {
		return nil, err
	}
	b, err := experiments.BuilderByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(sc), nil
}
