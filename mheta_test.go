package mheta_test

import (
	"testing"

	"mheta"
)

func TestNamedClusterAPI(t *testing.T) {
	for _, name := range []string{"DC", "IO", "HY1", "HY2"} {
		spec, err := mheta.NamedCluster(name)
		if err != nil {
			t.Fatalf("NamedCluster(%s): %v", name, err)
		}
		if spec.N() != 8 {
			t.Fatalf("%s: %d nodes", name, spec.N())
		}
	}
	if _, err := mheta.NamedCluster("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestMustNamedClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	mheta.MustNamedCluster("nope")
}

func TestFacadeEndToEnd(t *testing.T) {
	spec := mheta.MustNamedCluster("HY1")
	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 96, 3
	app := mheta.Jacobi(cfg)

	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		t.Fatal(err)
	}
	blk := mheta.BlockDistribution(app, spec)
	if blk.Total() != cfg.Rows {
		t.Fatalf("Blk total %d", blk.Total())
	}
	pred := model.Predict(blk)
	if pred.Total <= 0 {
		t.Fatal("non-positive prediction")
	}
	actual, err := mheta.RunActual(spec, app, blk, 7)
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.Total / actual
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("prediction %v vs actual %v", pred.Total, actual)
	}
}

func TestFacadeAppBuilders(t *testing.T) {
	builders := []*mheta.App{
		mheta.Jacobi(mheta.JacobiDefaults()),
		mheta.CG(mheta.CGDefaults()),
		mheta.Lanczos(mheta.LanczosDefaults()),
		mheta.RNA(mheta.RNADefaults()),
		mheta.Multigrid(mheta.MGDefaults()),
	}
	for _, app := range builders {
		if err := app.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Prog.Name, err)
		}
	}
}

func TestSearchWithAllAlgorithms(t *testing.T) {
	spec := mheta.MustNamedCluster("HY1")
	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 96, 3
	app := mheta.Jacobi(cfg)
	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		t.Fatal(err)
	}
	blkPred := model.Predict(mheta.BlockDistribution(app, spec)).Total
	for _, alg := range []string{mheta.AlgGBS, mheta.AlgGenetic, mheta.AlgAnnealing, mheta.AlgRandom} {
		res, err := mheta.SearchWith(alg, spec, app, model, 42)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Time > blkPred*1.001 {
			t.Errorf("%s found a worse-than-Blk distribution", alg)
		}
		if err := res.Best.Validate(cfg.Rows); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
	if _, err := mheta.SearchWith("bogus", spec, app, model, 42); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestInstrumentParamsRoundTrip(t *testing.T) {
	spec := mheta.MustNamedCluster("IO")
	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 768, 96, 3
	app := mheta.Jacobi(cfg)
	params, err := mheta.InstrumentParams(spec, app, 42)
	if err != nil {
		t.Fatal(err)
	}
	if params.Program != "jacobi" || params.Nodes != 8 {
		t.Fatalf("params header %+v", params)
	}
}
