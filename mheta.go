// Package mheta is the public API of this MHETA reproduction: the
// execution model of "The MHETA Execution Model for Heterogeneous
// Clusters" (Nakazawa, Lowenthal, Zhou — SC 2005) together with the
// emulated heterogeneous cluster, the out-of-core application executor,
// the MPI-Jack instrumentation pipeline, and the distribution-search
// algorithms of the companion work.
//
// The typical flow mirrors the paper's runtime system:
//
//	spec := mheta.MustNamedCluster("HY1")         // Table 1 architecture
//	app  := mheta.Jacobi(mheta.JacobiDefaults())  // a benchmark app
//	model, _ := mheta.Instrument(spec, app, 42)   // micro-bench + 1 instrumented iteration
//	pred := model.Predict(candidate)              // Equations 1–5
//	best := mheta.SearchGBS(spec, app, model)     // distribution search
//
// See the examples/ directory for runnable programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured record.
package mheta

import (
	"context"
	"fmt"

	"mheta/internal/apps"
	"mheta/internal/cluster"
	"mheta/internal/core"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/instrument"
	"mheta/internal/mpi"
	"mheta/internal/obs"
	"mheta/internal/search"
)

// Re-exported core types. The internal packages carry the full API; the
// facade covers the common path.
type (
	// ClusterSpec describes an emulated heterogeneous cluster (Figure 2).
	ClusterSpec = cluster.Spec
	// NodeSpec is one node's relative CPU power, memory and disk scale.
	NodeSpec = cluster.NodeSpec
	// Distribution is a 1-D GEN_BLOCK distribution: elements per node.
	Distribution = dist.Distribution
	// App is a runnable application (program structure + numeric kernels).
	App = exec.App
	// Model is a compiled MHETA instance.
	Model = core.Model
	// Params is the measured parameter set behind a Model.
	Params = core.Params
	// Prediction is a model evaluation result.
	Prediction = core.Prediction
	// SearchResult is a distribution-search outcome.
	SearchResult = search.Result
	// JacobiConfig, CGConfig, LanczosConfig, RNAConfig and MGConfig size
	// the benchmark applications.
	JacobiConfig  = apps.JacobiConfig
	CGConfig      = apps.CGConfig
	LanczosConfig = apps.LanczosConfig
	RNAConfig     = apps.RNAConfig
	MGConfig      = apps.MGConfig
)

// NamedCluster returns a Table 1 configuration: "DC", "IO", "HY1", "HY2".
func NamedCluster(name string) (ClusterSpec, error) { return cluster.Named(name) }

// MustNamedCluster is NamedCluster for static names; it panics on error.
func MustNamedCluster(name string) ClusterSpec {
	s, err := cluster.Named(name)
	if err != nil {
		panic(err)
	}
	return s
}

// JacobiDefaults, CGDefaults, LanczosDefaults and RNADefaults return the
// experiment-scale configurations of §5.1.
func JacobiDefaults() JacobiConfig   { return apps.DefaultJacobiConfig() }
func CGDefaults() CGConfig           { return apps.DefaultCGConfig() }
func LanczosDefaults() LanczosConfig { return apps.DefaultLanczosConfig() }
func RNADefaults() RNAConfig         { return apps.DefaultRNAConfig() }

// MGDefaults returns the multigrid configuration (§6 future work,
// implemented here as a two-grid V-cycle).
func MGDefaults() MGConfig { return apps.DefaultMGConfig() }

// Jacobi, CG, Lanczos, RNA and Multigrid build the benchmark
// applications (the paper's four plus the §6 extension).
func Jacobi(cfg JacobiConfig) *App   { return apps.NewJacobi(cfg) }
func CG(cfg CGConfig) *App           { return apps.NewCG(cfg) }
func Lanczos(cfg LanczosConfig) *App { return apps.NewLanczos(cfg) }
func RNA(cfg RNAConfig) *App         { return apps.NewRNA(cfg) }
func Multigrid(cfg MGConfig) *App    { return apps.NewMultigrid(cfg) }

// BlockDistribution returns the Blk distribution for an app on a cluster.
func BlockDistribution(app *App, spec ClusterSpec) Distribution {
	return dist.Block(app.Prog.GlobalElems(), spec.N())
}

// DefaultNoise is the emulation perturbation amplitude used throughout
// the evaluation (±2%).
const DefaultNoise = 0.02

// Instrument runs the micro-benchmarks and the single instrumented
// iteration (under Blk, as in the paper) and returns the compiled model.
func Instrument(spec ClusterSpec, app *App, seed uint64) (*Model, error) {
	base := BlockDistribution(app, spec)
	params, err := instrument.Collect(spec, app, base, seed, DefaultNoise)
	if err != nil {
		return nil, err
	}
	return core.NewModel(params)
}

// InstrumentParams is Instrument returning the raw parameter set (for
// serialisation via the param file format).
func InstrumentParams(spec ClusterSpec, app *App, seed uint64) (Params, error) {
	base := BlockDistribution(app, spec)
	return instrument.Collect(spec, app, base, seed, DefaultNoise)
}

// RunActual executes the application under a distribution on a fresh
// emulated world and returns the total virtual execution time in seconds.
func RunActual(spec ClusterSpec, app *App, d Distribution, seed uint64) (float64, error) {
	w := mpi.NewWorld(spec, seed, DefaultNoise)
	res, err := exec.Run(w, app, d, exec.Options{})
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// SearchGBS finds an efficient distribution with generalized binary
// search over the Figure 8 spectrum, using the model as the evaluation
// function.
func SearchGBS(spec ClusterSpec, app *App, model *Model) SearchResult {
	var bpe int64
	for _, v := range app.Prog.DistributedVars() {
		bpe += v.ElemBytes
	}
	g := &search.GBS{Spec: spec, BytesPerElem: bpe}
	return g.Search(search.NewDeltaModelEvaluator(model), app.Prog.GlobalElems())
}

// Searcher names for SearchWith.
const (
	AlgGBS       = "gbs"
	AlgGenetic   = "genetic"
	AlgAnnealing = "annealing"
	AlgRandom    = "random"
)

// SearchWith runs the named algorithm ("gbs", "genetic", "annealing",
// "random") with default parameters on a single worker.
func SearchWith(alg string, spec ClusterSpec, app *App, model *Model, seed uint64) (SearchResult, error) {
	return SearchWithWorkers(alg, spec, app, model, seed, 1)
}

// SearchWithWorkers is SearchWith evaluating candidates on a pool of
// workers, each owning its own clone of the model (workers <= 0 selects
// GOMAXPROCS). Results — Best, Time and Evaluations — are bit-identical
// for any worker count; parallelism only changes wall-clock time.
func SearchWithWorkers(alg string, spec ClusterSpec, app *App, model *Model, seed uint64, workers int) (SearchResult, error) {
	if workers == 0 {
		workers = -1 // SearchOptions spells "all cores" as negative; 0 is inline
	}
	return SearchWithOptions(alg, spec, app, model, seed, SearchOptions{Workers: workers})
}

// Metrics is an observability registry (see internal/obs): counters,
// gauges, histograms and convergence series the search machinery fills
// when one is supplied. A nil *Metrics disables all instrumentation at
// the cost of a nil check.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// SearchOptions configures SearchWithOptions beyond the algorithm name.
type SearchOptions struct {
	// Workers is the evaluation-pool size; 1 (and 0) evaluate inline,
	// negative selects GOMAXPROCS. The search outcome is bit-identical
	// for any value — metrics and parallelism are observation only.
	Workers int
	// Metrics, when non-nil, receives the memo hit/miss counters, the
	// pool utilization counters and the per-algorithm convergence series
	// ("search.<alg>.best").
	Metrics *Metrics
	// Context, when non-nil, bounds the search: once it is done the
	// search aborts at the next evaluation batch and SearchWithOptions
	// returns the context's error (context.Canceled or DeadlineExceeded).
	// A search that completes before the deadline is bit-identical to an
	// unbounded one — the deadline affects whether a result is produced,
	// never which result.
	Context context.Context
}

// SearchWithOptions runs the named algorithm ("gbs", "genetic",
// "annealing", "random") with the given evaluation-pool size, optional
// metrics registry and optional cancellation context.
func SearchWithOptions(alg string, spec ClusterSpec, app *App, model *Model, seed uint64, opts SearchOptions) (SearchResult, error) {
	// The delta evaluator replays cached per-width busy terms, scoring
	// bit-identically to ModelEvaluator but several times faster on the
	// near-neighbour candidates searches emit. Observe before NewPool so
	// worker clones share the delta-path counters.
	dme := search.NewDeltaModelEvaluator(model)
	dme.Observe(opts.Metrics)
	var ev search.Evaluator = dme
	if opts.Workers != 1 && opts.Workers != 0 {
		pool := search.NewPool(ev, opts.Workers)
		pool.Observe(opts.Metrics)
		ev = pool
	}
	total := app.Prog.GlobalElems()
	var s search.Searcher
	switch alg {
	case AlgGBS:
		var bpe int64
		for _, v := range app.Prog.DistributedVars() {
			bpe += v.ElemBytes
		}
		s = &search.GBS{Spec: spec, BytesPerElem: bpe, Obs: opts.Metrics}
	case AlgGenetic:
		s = &search.Genetic{N: spec.N(), Seed: seed, Obs: opts.Metrics}
	case AlgAnnealing:
		s = &search.Annealing{N: spec.N(), Seed: seed, Obs: opts.Metrics}
	case AlgRandom:
		s = &search.Random{N: spec.N(), Seed: seed, Obs: opts.Metrics}
	default:
		return SearchResult{}, fmt.Errorf("mheta: unknown search algorithm %q", alg)
	}
	return search.SearchContext(opts.Context, s, ev, total)
}
