// shared-disk demonstrates the §3.2 global-disk extension: the same
// out-of-core Jacobi workload on the IO configuration with private
// per-node disks versus one disk shared by all processors. Under sharing,
// every node that streams slows every other streaming node, so
// distributions that keep more nodes in core win by a much larger margin
// — and MHETA, with its contention-aware I/O term, still predicts the
// whole spectrum. A per-rank timeline of the shared-disk run shows the
// I/O ('#') serialisation.
//
// Run with: go run ./examples/shared-disk
package main

import (
	"fmt"
	"log"

	"mheta"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/mpi"
	"mheta/internal/stats"
	"mheta/internal/trace"
)

func main() {
	log.SetFlags(0)

	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 3072, 512, 5 // out of core on 1 MiB nodes
	app := mheta.Jacobi(cfg)

	private := mheta.MustNamedCluster("IO")
	shared := private.WithSharedDisk()

	for _, spec := range []mheta.ClusterSpec{private, shared} {
		model, err := mheta.Instrument(spec, app, 42)
		if err != nil {
			log.Fatalf("instrument: %v", err)
		}
		var bpe int64
		for _, v := range app.Prog.DistributedVars() {
			bpe += v.ElemBytes
		}
		fmt.Printf("\n%s:\n%-12s %10s %10s %8s\n", spec.Name, "position", "actual(s)", "pred(s)", "diff%")
		for _, pt := range dist.Spectrum(cfg.Rows, spec, bpe, 2) {
			actual, err := mheta.RunActual(spec, app, pt.Dist, 7)
			if err != nil {
				log.Fatal(err)
			}
			pred := model.Predict(pt.Dist).Total
			label := pt.Label
			if label == "" {
				label = "·"
			}
			fmt.Printf("%-12s %10.3f %10.3f %8.2f\n", label, actual, pred,
				stats.PercentDiff(pred, actual)*100)
		}
	}

	// Timeline of the shared-disk Blk run: the four small-memory nodes
	// spend most of their sections in contended I/O.
	tr := trace.New()
	w := mpi.NewWorld(shared, 7, mheta.DefaultNoise)
	if _, err := exec.Run(w, app, dist.Block(cfg.Rows, shared.N()), exec.Options{Trace: tr, Iterations: 2}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared-disk Blk timeline (2 iterations):\n%s", tr.Gantt(shared.N(), 72))
}
