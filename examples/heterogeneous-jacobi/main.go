// heterogeneous-jacobi sweeps the Figure 8 distribution spectrum for
// out-of-core Jacobi on the HY1 hybrid configuration — the experiment
// behind the paper's §5.3 observation that Jacobi's best distribution on
// HY1 lies strictly *between* the I-C/Bal and Bal anchors and beats Bal
// by a significant margin, which no static rule would find.
//
// Run with: go run ./examples/heterogeneous-jacobi
package main

import (
	"fmt"
	"log"

	"mheta"
	"mheta/internal/dist"
	"mheta/internal/stats"
)

func main() {
	log.SetFlags(0)

	spec := mheta.MustNamedCluster("HY1")
	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Iterations = 3072, 30
	app := mheta.Jacobi(cfg)

	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	var bpe int64
	for _, v := range app.Prog.DistributedVars() {
		bpe += v.ElemBytes
	}
	points := dist.Spectrum(app.Prog.GlobalElems(), spec, bpe, 4)

	fmt.Printf("%-12s %10s %10s %8s\n", "position", "actual(s)", "pred(s)", "diff%")
	bestIdx, bestTime := 0, 0.0
	var balTime float64
	for i, pt := range points {
		actual, err := mheta.RunActual(spec, app, pt.Dist, 7)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		pred := model.Predict(pt.Dist)
		label := pt.Label
		if label == "" {
			label = fmt.Sprintf("leg%d+%.2f", pt.Leg, pt.T)
		}
		fmt.Printf("%-12s %10.3f %10.3f %8.2f\n", label, actual, pred.Total,
			stats.PercentDiff(pred.Total, actual)*100)
		if i == 0 || actual < bestTime {
			bestIdx, bestTime = i, actual
		}
		if pt.Label == "Bal" {
			balTime = actual
		}
	}
	fmt.Printf("\nbest distribution: %s %v (%.3fs)\n",
		pointLabel(points[bestIdx]), points[bestIdx].Dist, bestTime)
	if balTime > 0 && bestTime < balTime {
		fmt.Printf("…which is %.1f%% better than Bal (%.3fs) — cf. §5.3's 28%% observation\n",
			(balTime-bestTime)/balTime*100, balTime)
	}
}

func pointLabel(p dist.SpectrumPoint) string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("leg%d+%.2f", p.Leg, p.T)
}
