// distribution-search compares the four search algorithms of the
// companion work — generalized binary search, genetic, simulated
// annealing, and random — all using MHETA as the evaluation function, on
// the HY2 hybrid configuration (§5.3: "MHETA is used as part of four
// different algorithms ... to determine an effective distribution").
//
// Each algorithm's choice is verified with an actual emulated run, and
// the Blk baseline shows what is at stake.
//
// Run with: go run ./examples/distribution-search
package main

import (
	"fmt"
	"log"

	"mheta"
	"mheta/internal/stats"
)

func main() {
	log.SetFlags(0)

	spec := mheta.MustNamedCluster("HY2")
	cfg := mheta.LanczosDefaults()
	cfg.N, cfg.Iterations = 1024, 3
	app := mheta.Lanczos(cfg)

	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	blk := mheta.BlockDistribution(app, spec)
	blkActual, err := mheta.RunActual(spec, app, blk, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %10s %10s %8s  %s\n", "algorithm", "pred(s)", "actual(s)", "evals", "distribution")
	fmt.Printf("%-10s %10.3f %10.3f %8s  %v\n", "blk", model.Predict(blk).Total, blkActual, "-", blk)

	for _, alg := range []string{mheta.AlgGBS, mheta.AlgGenetic, mheta.AlgAnnealing, mheta.AlgRandom} {
		res, err := mheta.SearchWith(alg, spec, app, model, 42)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := mheta.RunActual(spec, app, res.Best, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %10.3f %8d  %v\n", res.Algorithm, res.Time, actual, res.Evaluations, res.Best)
		_ = stats.PercentDiff // keep the accuracy helper handy for readers extending this example
	}
	fmt.Printf("\nspeedup available over Blk: run any algorithm's distribution and compare.\n")
}
