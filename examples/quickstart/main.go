// Quickstart: the smallest end-to-end MHETA workflow.
//
// 1. Pick a Table 1 heterogeneous cluster (HY1).
// 2. Build a benchmark application (Jacobi iteration).
// 3. Instrument one iteration (micro-benchmarks + MPI-Jack hooks).
// 4. Predict the execution time of two candidate distributions.
// 5. Check the predictions against actual emulated runs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mheta"
)

func main() {
	log.SetFlags(0)

	spec := mheta.MustNamedCluster("HY1")
	fmt.Printf("cluster %s: %d nodes, relative CPU powers ", spec.Name, spec.N())
	for _, n := range spec.Nodes {
		fmt.Printf("%.1f ", n.CPUPower)
	}
	fmt.Println()

	cfg := mheta.JacobiDefaults()
	cfg.Rows, cfg.Iterations = 2048, 20 // quick demo scale
	app := mheta.Jacobi(cfg)

	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	// Candidate 1: the naive block distribution.
	blk := mheta.BlockDistribution(app, spec)
	// Candidate 2: whatever GBS finds using the model.
	found := mheta.SearchGBS(spec, app, model)

	for _, c := range []struct {
		name string
		d    mheta.Distribution
	}{{"Blk", blk}, {"GBS-found", found.Best}} {
		pred := model.Predict(c.d)
		actual, err := mheta.RunActual(spec, app, c.d, 7)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("%-10s dist=%v\n", c.name, c.d)
		fmt.Printf("           predicted %.3fs, actual %.3fs\n", pred.Total, actual)
	}
	fmt.Printf("GBS spent %d model evaluations\n", found.Evaluations)
}
