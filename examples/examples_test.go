// Compile-run coverage for the examples: each must build and exit
// cleanly, and each narrates its scenario on stdout. The examples are the
// documented entry points to the library, so a signature change that
// breaks one should fail tests, not a reader.
package examples_test

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamples(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string // a string the example's narration must contain
	}{
		{"quickstart", "predicted"},
		{"heterogeneous-jacobi", "best distribution"},
		{"distribution-search", "GBS"},
		{"pipeline-rna", "pipeline tail"},
		{"shared-disk", "shared"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./"+tc.name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", tc.name, err, out)
			}
			if !strings.Contains(strings.ToLower(string(out)), strings.ToLower(tc.want)) {
				t.Errorf("example %s output does not mention %q:\n%s", tc.name, tc.want, out)
			}
		})
	}
}
