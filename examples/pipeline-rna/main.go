// pipeline-rna demonstrates the pipelined execution model (Equation 4):
// the RNA wavefront application on the DC configuration, where relative
// CPU power differences make the pipeline's head or tail the bottleneck
// depending on the distribution. It prints the per-node predicted times,
// showing how downstream nodes inherit upstream delays, and verifies the
// DP table against the sequential reference.
//
// Run with: go run ./examples/pipeline-rna
package main

import (
	"fmt"
	"log"
	"math"

	"mheta"
	"mheta/internal/apps"
	"mheta/internal/dist"
	"mheta/internal/exec"
	"mheta/internal/mpi"
	"mheta/internal/stats"
)

func main() {
	log.SetFlags(0)

	spec := mheta.MustNamedCluster("DC")
	cfg := mheta.RNADefaults()
	cfg.Rows, cfg.Cols, cfg.Iterations = 1024, 512, 5
	app := mheta.RNA(cfg)

	model, err := mheta.Instrument(spec, app, 42)
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}

	for _, c := range []struct {
		name string
		d    mheta.Distribution
	}{
		{"Blk", dist.Block(cfg.Rows, spec.N())},
		{"Bal", dist.Balanced(cfg.Rows, spec)},
	} {
		pred := model.PredictDetailed(c.d)
		actual, err := mheta.RunActual(spec, app, c.d, 7)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("%s %v\n", c.name, c.d)
		fmt.Printf("  predicted %.3fs, actual %.3fs (diff %.2f%%)\n",
			pred.Total, actual, stats.PercentDiff(pred.Total, actual)*100)
		fmt.Printf("  per-node predicted iteration times:")
		for _, t := range pred.NodeTimes {
			fmt.Printf(" %.4f", t)
		}
		fmt.Println(" — the pipeline tail finishes last")
	}

	// Verify the wavefront numerics: the parallel DP equals a sequential
	// sweep exactly, independent of the distribution.
	w := mpi.NewWorld(spec, 7, mheta.DefaultNoise)
	d := dist.Block(cfg.Rows, spec.N())
	if _, err := exec.Run(w, app, d, exec.Options{}); err != nil {
		log.Fatalf("verify run: %v", err)
	}
	// Rebuild the final table from the per-node disks (tile-major layout).
	refTable, refScore := apps.RNAReference(cfg, cfg.Iterations)
	maxErr := 0.0
	strip := cfg.Cols / cfg.Tiles
	for p := 0; p < spec.N(); p++ {
		start := d.Start(p)
		blob := w.Rank(p).Disk().Extent("T")
		for k := 0; k < cfg.Tiles; k++ {
			for i := 0; i < d[p]; i++ {
				for j := 0; j < strip; j++ {
					off := (k*d[p]+i)*strip + j
					got := math.Float64frombits(leU64(blob[8*off:]))
					want := refTable[start+i][k*strip+j]
					if e := math.Abs(got - want); e > maxErr {
						maxErr = e
					}
				}
			}
		}
	}
	fmt.Printf("numeric check vs sequential reference: max |Δ| = %g (score %.3f)\n", maxErr, refScore)
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
